"""Pooled block storage: every block's padded array is a row of one pool.

The paper's central data-structure bet is that *all blocks have the same
shape*: an ``m1 × ... × md`` cell array with a fixed ghost halo.  That
regularity is what lets per-block loops become long vectorizable sweeps.
The :class:`BlockArena` pushes the same idea one level up: instead of one
numpy allocation per block, the forest stores every block's padded array
as one row of a single contiguous ``(capacity, nvar, *padded)`` pool.

* Allocation/release is a free-list — O(1), no allocator churn as the
  forest adapts.
* ``Block.data`` becomes a *view* of the block's pool row, so every
  existing per-block kernel works unchanged.
* After adaptation the active rows can be *compacted* to a contiguous
  Morton-ordered prefix (:meth:`ensure_compact`), so the batched engine
  gets a zero-copy ``(B, nvar, *padded)`` stack covering the whole
  forest and can sweep all blocks with single numpy calls.
* A scratch pool of interior-shaped rows (:meth:`save_pool`) backs the
  two-stage integrator's predictor saves without per-step allocation.

Growth and compaction move rows, which invalidates outstanding views;
the arena re-binds every registered block's ``data`` attribute and bumps
:attr:`layout_epoch` so consumers caching raw views (the compiled ghost
plan, the batched gather/scatter index arrays) can key on it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.metrics import METRICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.block import Block
    from repro.core.integrity import RowLedger

__all__ = ["BlockArena"]


class BlockArena:
    """Free-list pool of identically shaped padded block arrays.

    Parameters
    ----------
    m:
        Computational cells per axis (every block in the forest shares
        this — the invariant that makes pooling possible).
    n_ghost:
        Ghost layers per side.
    nvar:
        State variables per cell.
    initial_capacity:
        Rows preallocated up front; the pool doubles on exhaustion.
    buffer:
        Optional writable buffer (e.g. a ``multiprocessing.shared_memory``
        view) backing the pool instead of a private allocation.  The
        capacity is then *fixed*: the buffer must hold exactly
        ``initial_capacity`` rows of float64 and :meth:`acquire` raises
        instead of growing when it is exhausted — a pool whose rows other
        processes map by offset cannot be silently reallocated.  The
        buffer's existing contents are kept (shared segments arrive
        zero-filled from the kernel; an attaching side must not clobber
        the creator's data).
    """

    def __init__(
        self,
        m: Sequence[int],
        n_ghost: int,
        nvar: int,
        *,
        initial_capacity: int = 8,
        buffer: Optional[memoryview] = None,
    ) -> None:
        self.m = tuple(int(mi) for mi in m)
        self.n_ghost = int(n_ghost)
        self.nvar = int(nvar)
        self.padded = tuple(mi + 2 * self.n_ghost for mi in self.m)
        cap = max(1, int(initial_capacity))
        self._fixed = buffer is not None
        if buffer is None:
            self.pool: np.ndarray = np.zeros((cap, self.nvar) + self.padded)
        else:
            shape = (cap, self.nvar) + self.padded
            need = 8 * int(np.prod(shape))
            if len(buffer) < need:
                raise ValueError(
                    f"buffer holds {len(buffer)} bytes; "
                    f"{need} needed for {cap} rows"
                )
            self.pool = np.frombuffer(
                buffer, dtype=np.float64, count=need // 8
            ).reshape(shape)
        #: bumped whenever rows move (growth or compaction): any cached
        #: view or flat index array into the pool is stale afterwards.
        self.layout_epoch = 0
        self.n_grows = 0
        self.n_compactions = 0
        self._blocks: List[Optional["Block"]] = [None] * cap
        self._free: List[int] = list(range(cap - 1, -1, -1))
        self._save: Optional[np.ndarray] = None
        self._rate: Optional[np.ndarray] = None
        #: opt-in integrity ledger (see :mod:`repro.core.integrity`);
        #: ``None`` until a scrubber attaches one, so the disabled cost
        #: is one branch per arena operation, like ``METRICS``.
        self.ledger: Optional["RowLedger"] = None

    # -- capacity bookkeeping ----------------------------------------------

    @property
    def capacity(self) -> int:
        return int(self.pool.shape[0])

    @property
    def n_active(self) -> int:
        return self.capacity - len(self._free)

    @property
    def row_size(self) -> int:
        """Elements per pool row (``nvar * prod(padded)``)."""
        n = self.nvar
        for p in self.padded:
            n *= p
        return n

    # -- allocation ---------------------------------------------------------

    def acquire(self) -> int:
        """Take a free row (zeroed), growing the pool if exhausted."""
        if not self._free:
            self._grow(self.capacity * 2)
        row = self._free.pop()
        self.pool[row] = 0.0
        if self.ledger is not None:
            self.ledger.drop(row)
        if METRICS.enabled:
            METRICS.inc("arena.acquires")
            METRICS.gauge("arena.occupancy", self.n_active / self.capacity)
        return row

    def view(self, row: int) -> np.ndarray:
        """The ``(nvar, *padded)`` view of one pool row."""
        return self.pool[row]

    def bind(self, row: int, block: "Block") -> None:
        """Register ``block`` as the owner of ``row`` so its ``data``
        view can be re-bound when rows move."""
        if self._blocks[row] is not None:
            raise ValueError(f"arena row {row} is already bound")
        self._blocks[row] = block
        block.arena_row = row
        block.data = self.pool[row]

    def release(self, block: "Block") -> None:
        """Return a block's row to the free list.

        The block's ``data`` keeps referencing the row until it is
        reused, so callers must finish reading it *before* any further
        allocation (the forest's refine path materializes the prolonged
        payload first for exactly this reason).
        """
        row = block.arena_row
        if row is None or self._blocks[row] is not block:
            raise ValueError(f"block {block.id} is not bound to this arena")
        self._blocks[row] = None
        block.arena_row = None
        self._free.append(row)
        if self.ledger is not None:
            self.ledger.drop(row)
        if METRICS.enabled:
            METRICS.inc("arena.releases")
            METRICS.gauge("arena.occupancy", self.n_active / self.capacity)

    def _grow(self, new_capacity: int) -> None:
        if self._fixed:
            raise RuntimeError(
                "buffer-backed arena is at fixed capacity "
                f"({self.capacity} rows); it cannot grow because other "
                "processes map its rows by offset"
            )
        old = self.pool
        cap = self.capacity
        pool = np.zeros((new_capacity, self.nvar) + self.padded)
        pool[:cap] = old
        self.pool = pool
        self._blocks.extend([None] * (new_capacity - cap))
        self._free.extend(range(new_capacity - 1, cap - 1, -1))
        for row, blk in enumerate(self._blocks[:cap]):
            if blk is not None:
                blk.data = pool[row]
        # Scratch contents are per-step; reallocate lazily at new size.
        self._save = None
        self._rate = None
        self.layout_epoch += 1
        self.n_grows += 1
        if self.ledger is not None:
            # Rows keep their indices across growth: identity rekey.
            self.ledger.epoch = self.layout_epoch
        if METRICS.enabled:
            METRICS.inc("arena.grows")
            METRICS.gauge("arena.capacity", new_capacity)

    # -- batched access -----------------------------------------------------

    def is_compact(self, blocks: Sequence["Block"]) -> bool:
        """True when ``blocks`` already occupy rows ``0..len-1`` in order."""
        return all(b.arena_row == i for i, b in enumerate(blocks))

    def ensure_compact(self, blocks: Sequence["Block"]) -> np.ndarray:
        """Permute rows so ``blocks`` occupy the prefix ``0..B-1`` in the
        given (Morton) order; return the zero-copy ``(B, nvar, *padded)``
        stack.  Idempotent: bumps :attr:`layout_epoch` only when rows
        actually move."""
        n = len(blocks)
        if self.is_compact(blocks):
            return self.pool[:n]
        rows = np.empty(n, dtype=np.intp)
        for i, b in enumerate(blocks):
            if b.arena_row is None or self._blocks[b.arena_row] is not b:
                raise ValueError(f"block {b.id} is not bound to this arena")
            rows[i] = b.arena_row
        # Advanced indexing on the right materializes the gathered rows
        # before the assignment, so overlapping source/destination is safe.
        self.pool[:n] = self.pool[rows]
        self._blocks = [None] * self.capacity
        for i, b in enumerate(blocks):
            self._blocks[i] = b
            b.arena_row = i
            b.data = self.pool[i]
        self._free = list(range(self.capacity - 1, n - 1, -1))
        self.layout_epoch += 1
        self.n_compactions += 1
        if self.ledger is not None:
            self.ledger.permute(rows, self.layout_epoch)
        if METRICS.enabled:
            METRICS.inc("arena.compactions")
        return self.pool[:n]

    # -- scratch (predictor saves) -----------------------------------------

    def save_pool(self) -> np.ndarray:
        """Scratch pool of interior-shaped rows, ``(capacity, nvar, *m)``.

        Row ``i`` belongs to the block bound to arena row ``i``; contents
        are only meaningful within one ``advance`` call (the two-stage
        predictor writes them, the corrector reads them back)."""
        if self._save is None or self._save.shape[0] != self.capacity:
            self._save = np.zeros((self.capacity, self.nvar) + self.m)
        return self._save

    def rate_pool(self) -> np.ndarray:
        """Interior-shaped scratch for flux-divergence rates,
        ``(capacity, nvar, *m)`` — reused across every tile of every
        stage instead of allocating one temporary per tile.  Contents
        are meaningless between kernel calls."""
        if self._rate is None or self._rate.shape[0] != self.capacity:
            self._rate = np.zeros((self.capacity, self.nvar) + self.m)
        return self._rate

    def save_row(self, block: "Block") -> np.ndarray:
        """The scratch row of one block (``(nvar, *m)`` view)."""
        row = block.arena_row
        if row is None:
            raise ValueError(f"block {block.id} is not bound to this arena")
        return self.save_pool()[row]

    def stats(self) -> Tuple[int, int, int]:
        """(capacity, grows, compactions) — for diagnostics and tests."""
        return (self.capacity, self.n_grows, self.n_compactions)

    def __repr__(self) -> str:
        return (
            f"BlockArena(m={self.m}, g={self.n_ghost}, nvar={self.nvar}, "
            f"active={self.n_active}/{self.capacity}, epoch={self.layout_epoch})"
        )
