"""Flux correction (refluxing) at coarse–fine block interfaces.

At a face where a coarse block abuts finer blocks, the two sides compute
*different* numerical fluxes for the same physical interface (the coarse
one from coarse reconstructions, the fine ones at twice the resolution),
so the update is not strictly conservative across the interface.  The
Berger–Colella remedy — implemented here as the library's optional
extension — replaces the coarse flux with the area-averaged fine flux
after the step:

``U_coarse_adjacent ± dt/dx_a * (F_coarse − <F_fine>)``

with the sign chosen so the coarse cell ends up as if it had used the
restricted fine flux.  With refluxing enabled, AMR runs conserve all
variables to round-off on periodic domains (tested), matching uniform
grids.

The paper's code accepted the (small) unsynchronized-flux error; its
descendants (BATS-R-US "conservative flux fix", PARAMESH, AMReX) all
grew this correction, so it belongs in a faithful production library.
Limited to ``max_level_jump == 1`` (the paper's standard constraint).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.block import NeighborKind
from repro.core.block_id import BlockID, IndexBox
from repro.core.forest import BlockForest
from repro.util.geometry import face_axis, face_side, opposite_face

__all__ = ["FluxRegister"]


def _restrict_transverse(flux: np.ndarray) -> np.ndarray:
    """Average a fine face-flux slab over 2x(2) transverse cells.

    Input shape ``(nvar, t1[, t2])`` with every ti even; output halves
    every transverse extent.  In 1-D (no transverse axes) it is the
    identity.
    """
    out = flux
    for axis in range(1, out.ndim):
        n = out.shape[axis]
        shape = out.shape[:axis] + (n // 2, 2) + out.shape[axis + 1 :]
        out = out.reshape(shape).mean(axis=axis + 1)
    return out


class FluxRegister:
    """Bookkeeping for one refluxing pass over a forest.

    Build it after the forest topology settles (it reads the explicit
    face-neighbor pointers); ask :attr:`needed_faces` which block faces
    must have their fluxes captured during the final update stage; feed
    the captured slabs to :meth:`record`; then :meth:`apply` the
    corrections.
    """

    def __init__(self, forest: BlockForest) -> None:
        if forest.max_level_jump != 1:
            raise ValueError(
                "refluxing supports the standard 2:1 balance only "
                f"(max_level_jump={forest.max_level_jump})"
            )
        self.forest = forest
        self.revision = forest.revision
        #: (coarse_id, face) -> tuple of fine neighbor ids across it
        self.interfaces: Dict[Tuple[BlockID, int], Tuple[BlockID, ...]] = {}
        #: faces every block must capture during the final stage
        self.needed_faces: Dict[BlockID, Set[int]] = {}
        for bid, block in forest.blocks.items():
            for face, fn in block.face_neighbors.items():
                if fn.kind == NeighborKind.FINER:
                    self.interfaces[(bid, face)] = fn.ids
                    self.needed_faces.setdefault(bid, set()).add(face)
                    opp = opposite_face(face)
                    for nid in fn.ids:
                        self.needed_faces.setdefault(nid, set()).add(opp)
        self._fluxes: Dict[Tuple[BlockID, int], np.ndarray] = {}

    @property
    def n_interfaces(self) -> int:
        return len(self.interfaces)

    def start_step(self) -> None:
        """Drop recorded fluxes from the previous step."""
        self._fluxes.clear()

    def record(self, bid: BlockID, face_fluxes: Dict[int, np.ndarray]) -> None:
        """Store the captured boundary-face fluxes of one block."""
        for face, slab in face_fluxes.items():
            self._fluxes[(bid, face)] = slab

    def accumulate(
        self, bid: BlockID, face_fluxes: Dict[int, np.ndarray], weight: float
    ) -> None:
        """Add ``weight``-scaled captured fluxes of one block.

        This is the subcycled counterpart of :meth:`record`: each level
        feeds its final-stage face fluxes weighted by its *own* substep
        length, so after one full coarse step the register holds the
        time-integrated flux ``sum_k dt_k F_k`` on both sides of every
        coarse-fine face (2^delta fine substeps against one coarse
        step over the same physical interval).  :meth:`apply` with
        ``dt=1`` then applies the Berger-Colella correction
        ``±(Σdt·<F_fine> − Σdt·F_coarse)/dx`` once per coarse step.
        """
        for face, slab in face_fluxes.items():
            key = (bid, face)
            cur = self._fluxes.get(key)
            if cur is None:
                self._fluxes[key] = weight * slab
            else:
                cur += weight * slab

    def apply(self, dt: float) -> float:
        """Correct the coarse cells adjacent to every coarse–fine face.

        Returns the largest absolute correction applied (diagnostic).
        ``dt`` must be the step length of the update whose fluxes were
        recorded.
        """
        if self.forest.revision != self.revision:
            raise RuntimeError(
                "forest topology changed since this FluxRegister was built"
            )
        worst = 0.0
        for (cid, face), fine_ids in self.interfaces.items():
            coarse = self.forest.blocks[cid]
            axis, side = face_axis(face), face_side(face)
            f_coarse = self._fluxes.get((cid, face))
            if f_coarse is None:
                raise RuntimeError(
                    f"no recorded flux for {cid} face {face}; was the "
                    "final stage run with face capture?"
                )
            # Layer of coarse interior cells adjacent to the face.
            ib = coarse.cell_box
            lo = list(ib.lo)
            hi = list(ib.hi)
            if side == 0:
                hi[axis] = lo[axis] + 1
            else:
                lo[axis] = hi[axis] - 1
            layer = IndexBox(tuple(lo), tuple(hi))
            layer_view = coarse.view(layer)
            # Transverse index frame of the slab: the layer minus its axis.
            t_axes = [a for a in range(coarse.ndim) if a != axis]
            t_lo = [layer.lo[a] for a in t_axes]
            opp = opposite_face(face)
            fn = coarse.face_neighbors[face]
            shift = tuple(
                s * (n << coarse.level) * m
                for s, n, m in zip(fn.shift, self.forest.n_root, self.forest.m)
            )
            sign = -1.0 if side == 1 else 1.0
            # dU = -(F_hi - F_lo)/dx: replacing F at the high face by the
            # fine average changes U by -(F_fine - F_coarse)/dx * dt, and
            # by +(...) at the low face.
            for nid in fine_ids:
                f_fine = self._fluxes.get((nid, opp))
                if f_fine is None:
                    raise RuntimeError(
                        f"no recorded flux for fine block {nid} face {opp}"
                    )
                f_avg = _restrict_transverse(f_fine)
                # Where this fine block sits within the coarse face.
                nb_box = self.forest.blocks[nid].cell_box.coarsened(1).shift(
                    tuple(-s for s in shift)
                )
                overlap = layer.intersect(
                    IndexBox(
                        tuple(
                            nb_box.lo[a] if a != axis else layer.lo[a]
                            for a in range(coarse.ndim)
                        ),
                        tuple(
                            nb_box.hi[a] if a != axis else layer.hi[a]
                            for a in range(coarse.ndim)
                        ),
                    )
                )
                if overlap.empty:
                    continue
                # Slices into the layer view (transverse axes only).
                dst_sl: List[slice] = [slice(None)]
                src_c_sl: List[slice] = [slice(None)]
                for a in range(coarse.ndim):
                    s0 = overlap.lo[a] - layer.lo[a]
                    s1 = overlap.hi[a] - layer.lo[a]
                    dst_sl.append(slice(s0, s1))
                    if a != axis:
                        src_c_sl.append(slice(s0, s1))
                fc = self._fluxes[(cid, face)][tuple(src_c_sl)]
                # The averaged fine slab covers exactly the overlap.
                dst = layer_view[tuple(dst_sl)]
                delta = sign * dt / coarse.dx[axis] * (
                    f_avg.reshape(fc.shape) - fc
                )
                dst += delta.reshape(dst.shape)
                worst = max(worst, float(np.abs(delta).max()))
        return worst
