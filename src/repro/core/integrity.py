"""Canonical checksum path and the arena integrity ledger (SDC defense).

This module is the *single* owner of content checksums for live
simulation state.  Lint rule REPRO105 forbids ``zlib``/``hashlib``
checksum calls outside the integrity/checkpoint/supervisor modules so
there is exactly one way a block, a mirror copy, or a wire payload gets
tagged — and therefore exactly one place a tag-format change has to
happen.

Two layers live here:

* :func:`content_crc` / :func:`crc_bytes` / :func:`crc_text` — the
  canonical CRC32 helpers everything else calls.
* :class:`RowLedger` — per-pool-row CRC tags for a
  :class:`~repro.core.arena.BlockArena`, keyed by the arena's
  ``layout_epoch`` so compaction permutes tags with their rows and
  growth re-keys them in place.  The ledger is *opt-in*: an arena
  carries ``ledger = None`` until a scrubber attaches one, so the
  disabled cost is a single ``is not None`` branch per arena operation
  (the same contract as the ``METRICS`` registry).

The verification pass itself (what to scrub, when, and how to heal)
lives in :mod:`repro.resilience.scrub`; this module is deliberately
dependency-free so ``core`` never imports ``resilience``.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "content_crc",
    "crc_bytes",
    "crc_text",
    "RowLedger",
]


def crc_bytes(data: bytes) -> int:
    """CRC32 of raw bytes, normalized to an unsigned 32-bit value."""
    return zlib.crc32(data) & 0xFFFFFFFF


def crc_text(text: str) -> int:
    """CRC32 of a string (UTF-8) — deterministic hashing for seeds/jitter."""
    return crc_bytes(text.encode("utf-8"))


def content_crc(arr: np.ndarray) -> int:
    """CRC32 of an array's contents.

    Contiguity-normalized (C order), so a strided interior view and a
    compacted copy of the same cells produce the same tag.
    """
    return crc_bytes(np.ascontiguousarray(arr).tobytes())


class RowLedger:
    """CRC tags of arena pool rows, carried across layout changes.

    Each tagged row stores a ``(data_crc, interior_crc)`` pair: the CRC
    of the whole padded row (state + ghost halo) and of the interior
    alone.  The pair lets a scrubber classify a mismatch — interior CRC
    bad means live state corruption; interior good but row bad means the
    ghost halo was hit.

    The ledger belongs to one arena and tracks its ``layout_epoch``:

    * :meth:`permute` is called by ``ensure_compact`` with the row
      permutation it applied, so tags travel with their rows.
    * growth keeps row indices (identity rekey) — the arena just
      advances :attr:`epoch`.
    * ``acquire``/``release`` drop the row's tag: a recycled row's
      contents are unrelated to whatever was tagged before.

    Rows with no tag are simply not verifiable yet (e.g. blocks created
    by refinement before the next retag boundary); the scrubber skips
    them rather than guessing.
    """

    __slots__ = ("epoch", "_tags")

    def __init__(self, epoch: int = 0) -> None:
        self.epoch = int(epoch)
        self._tags: Dict[int, Tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._tags)

    def tag(self, row: int, data_crc: int, interior_crc: int) -> None:
        self._tags[row] = (int(data_crc), int(interior_crc))

    def get(self, row: int) -> Optional[Tuple[int, int]]:
        return self._tags.get(row)

    def drop(self, row: int) -> None:
        self._tags.pop(row, None)

    def clear(self) -> None:
        self._tags.clear()

    def permute(self, rows: np.ndarray, epoch: int) -> None:
        """Re-key tags after a compaction that moved ``rows[i] -> i``.

        Tags of rows outside the permutation belonged to blocks that are
        no longer bound (their rows were freed by the compaction), so
        they are dropped.
        """
        old = self._tags
        self._tags = {
            i: old[int(src)]
            for i, src in enumerate(rows)
            if int(src) in old
        }
        self.epoch = int(epoch)

    def __repr__(self) -> str:
        return f"RowLedger(epoch={self.epoch}, tagged={len(self._tags)})"
