"""Restriction operators: fine block data → coarse cells.

Restriction is used (a) to fill a block's ghost cells from a *finer*
face neighbor and (b) to build a parent block's interior when 2^d
children are coarsened.  The operator is volume-weighted averaging,
which for equal-volume Cartesian children is the plain mean over each
``2 × 2 (× 2)`` group of fine cells — exactly conservative: the coarse
cell holds the same total conserved quantity as the fine cells it
replaces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["restrict_mean"]


def restrict_mean(fine: np.ndarray, ndim: int) -> np.ndarray:
    """Average ``2**ndim`` groups of fine cells into coarse cells.

    Parameters
    ----------
    fine:
        Array of shape ``(nvar, n1, ..., nd)`` with every ``ni`` even.
    ndim:
        Number of spatial dimensions (trailing axes of ``fine``).

    Returns
    -------
    Array of shape ``(nvar, n1//2, ..., nd//2)``.
    """
    if fine.ndim != ndim + 1:
        raise ValueError(
            f"expected {ndim + 1} array dims (nvar + space), got {fine.ndim}"
        )
    spatial = fine.shape[1:]
    for n in spatial:
        if n % 2 != 0:
            raise ValueError(f"spatial extent {n} not even; cannot restrict")
    # Reshape each spatial axis n -> (n//2, 2) then mean over the 2s.
    new_shape = [fine.shape[0]]
    for n in spatial:
        new_shape.extend((n // 2, 2))
    reshaped = fine.reshape(new_shape)
    # The "2" axes are at positions 2, 4, ..., 2*ndim.
    mean_axes = tuple(2 * (a + 1) for a in range(ndim))
    return reshaped.mean(axis=mean_axes)
