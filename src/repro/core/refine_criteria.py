"""Refinement and coarsening criteria.

The paper leaves the choice of refinement criterion open ("One can vary
the refinement/coarsening criteria, the extent of refinement/coarsening,
the frequency of checking criteria") — the block structure supports any
of them.  This module provides the standard family used by the authors'
MHD code and its descendants:

* **gradient** — maximum undivided first difference of a monitored
  quantity inside the block;
* **curvature** — maximum normalized second difference (detects both
  shocks and smooth extrema, less noisy than the raw gradient);
* **geometric** — distance-based static refinement (e.g. around the
  inner solar-corona boundary).

Each criterion maps a block to a scalar *indicator*; a
:class:`RefinementCriterion` turns indicators into refine/coarsen flags
via two thresholds, and :func:`buffer_flags` widens the refine set by a
band of face neighbors so features do not escape the refined region
between (infrequent) adaptation steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.block import Block
from repro.core.block_id import BlockID
from repro.core.forest import BlockForest

__all__ = [
    "gradient_indicator",
    "curvature_indicator",
    "geometric_indicator",
    "RefinementCriterion",
    "MonitorCriterion",
    "buffer_flags",
    "compute_flags",
]

#: A monitor extracts the scalar field to adapt on from a block's state
#: array (shape ``(nvar, *padded)`` → ``(*padded,)``), e.g. density.
Monitor = Callable[[np.ndarray], np.ndarray]


def gradient_indicator(
    block: Block, monitor: Monitor, *, scale: Optional[float] = None
) -> float:
    """Maximum undivided first difference of the monitored field.

    Undivided (no ``1/dx``) so the indicator is resolution-comparable:
    refining a smooth feature halves it, which is what drives coarsening
    once a feature is resolved.  ``scale`` normalizes the differences;
    by default the block's own max magnitude is used, but a forest-global
    scale (see :class:`MonitorCriterion`) is more robust — it keeps
    low-amplitude far-field blocks from flagging.
    """
    q = monitor(block.data)
    g = block.n_ghost
    best = 0.0
    if scale is None:
        scale = max(float(np.max(np.abs(q))), 1e-300)
    for axis in range(block.ndim):
        sl_c = [slice(g, -g)] * block.ndim
        sl_p = list(sl_c)
        sl_c[axis] = slice(g, -g)
        sl_p[axis] = slice(g + 1, q.shape[axis] - g + 1)
        diff = np.abs(q[tuple(sl_p)] - q[tuple(sl_c)])
        best = max(best, float(np.max(diff)) / scale)
    return best


def curvature_indicator(
    block: Block,
    monitor: Monitor,
    *,
    eps: float = 0.02,
    scale: Optional[float] = None,
) -> float:
    """Maximum normalized second difference of the monitored field.

    The normalization ``|q_{i+1} - 2 q_i + q_{i-1}| / (|q_{i+1} - q_i| +
    |q_i - q_{i-1}| + eps * scale)`` is the classic Löhner-type shock
    sensor used by block-AMR flow codes.  ``eps * scale`` is the noise
    filter; with the default block-local ``scale`` a low-amplitude tail
    is as "curved" as the feature itself, so prefer a forest-global
    scale (see :class:`MonitorCriterion`).
    """
    q = monitor(block.data)
    g = block.n_ghost
    best = 0.0
    if scale is None:
        scale = max(float(np.max(np.abs(q))), 1e-300)
    for axis in range(block.ndim):
        sl_c = [slice(g, -g)] * block.ndim
        sl_p = list(sl_c)
        sl_m = list(sl_c)
        sl_p[axis] = slice(g + 1, q.shape[axis] - g + 1)
        sl_m[axis] = slice(g - 1, q.shape[axis] - g - 1)
        qc, qp, qm = q[tuple(sl_c)], q[tuple(sl_p)], q[tuple(sl_m)]
        num = np.abs(qp - 2.0 * qc + qm)
        den = np.abs(qp - qc) + np.abs(qc - qm) + eps * scale
        best = max(best, float(np.max(num / den)))
    return best


def geometric_indicator(
    block: Block, center: Sequence[float], radius: float
) -> float:
    """1.0 if the block overlaps a sphere around ``center``, else 0.0.

    Used for static refinement around bodies (the solar-wind problem's
    inner boundary sphere).
    """
    # Distance from the sphere center to the nearest point of the box.
    d2 = 0.0
    for c, lo, hi in zip(center, block.box.lo, block.box.hi):
        nearest = min(max(c, lo), hi)
        d2 += (nearest - c) ** 2
    return 1.0 if d2 <= radius * radius else 0.0


@dataclass
class RefinementCriterion:
    """Threshold-based refine/coarsen flagging.

    A block is flagged for refinement when its indicator exceeds
    ``refine_threshold`` (and it is below ``max_level``), for coarsening
    when the indicator falls below ``coarsen_threshold``.  Keeping the
    two thresholds apart (hysteresis) prevents refine/coarsen flapping.
    """

    indicator: Callable[[Block], float]
    refine_threshold: float
    coarsen_threshold: float
    max_level: int = 10
    min_level: int = 0

    def __post_init__(self) -> None:
        if self.coarsen_threshold > self.refine_threshold:
            raise ValueError(
                "coarsen_threshold must not exceed refine_threshold "
                f"({self.coarsen_threshold} > {self.refine_threshold})"
            )

    def evaluate(
        self, forest: BlockForest
    ) -> Tuple[List[BlockID], List[BlockID], Dict[BlockID, float]]:
        """Indicators + flags for every block of a forest."""
        refine: List[BlockID] = []
        coarsen: List[BlockID] = []
        values: Dict[BlockID, float] = {}
        for block in forest:
            v = self.indicator(block)
            values[block.id] = v
            if v > self.refine_threshold and block.level < self.max_level:
                refine.append(block.id)
            elif v < self.coarsen_threshold and block.level > self.min_level:
                coarsen.append(block.id)
        return refine, coarsen, values


@dataclass
class MonitorCriterion:
    """Criterion on a monitored scalar with forest-global normalization.

    Evaluates one pass over the forest to find the global magnitude of
    the monitored field, then computes per-block indicators normalized
    by it — the robust form for problems with large dynamic range
    (blasts, winds), where block-local normalization would flag
    low-amplitude far-field blocks.

    ``kind`` selects the sensor: ``"curvature"`` (Löhner-type, default)
    or ``"gradient"`` (undivided first difference).
    """

    monitor: Monitor
    refine_threshold: float
    coarsen_threshold: float
    max_level: int = 10
    min_level: int = 0
    kind: str = "curvature"
    eps: float = 0.02

    def __post_init__(self) -> None:
        if self.coarsen_threshold > self.refine_threshold:
            raise ValueError("coarsen_threshold must not exceed refine_threshold")
        if self.kind not in ("curvature", "gradient"):
            raise ValueError(f"unknown sensor kind {self.kind!r}")

    def indicator(self, block: Block, scale: float) -> float:
        if self.kind == "gradient":
            return gradient_indicator(block, self.monitor, scale=scale)
        return curvature_indicator(block, self.monitor, eps=self.eps, scale=scale)

    def evaluate(
        self, forest: BlockForest
    ) -> Tuple[List[BlockID], List[BlockID], Dict[BlockID, float]]:
        g = forest.n_ghost
        scale = 1e-300
        for block in forest:
            q = self.monitor(block.data)
            interior = tuple(slice(g, s - g) for s in q.shape)
            scale = max(scale, float(np.max(np.abs(q[interior]))))
        refine: List[BlockID] = []
        coarsen: List[BlockID] = []
        values: Dict[BlockID, float] = {}
        for block in forest:
            v = self.indicator(block, scale)
            values[block.id] = v
            if v > self.refine_threshold and block.level < self.max_level:
                refine.append(block.id)
            elif v < self.coarsen_threshold and block.level > self.min_level:
                coarsen.append(block.id)
        return refine, coarsen, values


def buffer_flags(
    forest: BlockForest, refine: Iterable[BlockID], band: int = 1
) -> List[BlockID]:
    """Widen a refine-flag set by ``band`` rings of face neighbors.

    A buffer band keeps moving features inside refined regions between
    adaptation checks — the mechanism that lets block AMR adapt *less
    frequently* than cell-based AMR (the paper's fifth advantage).
    Neighbors already finer than the flagged block are not added.
    """
    flagged: Set[BlockID] = set(refine)
    frontier = set(flagged)
    for _ in range(band):
        nxt: Set[BlockID] = set()
        for bid in frontier:
            if bid not in forest.blocks:
                continue
            for fn in forest.blocks[bid].face_neighbors.values():
                for nid in fn.ids:
                    if nid not in flagged and nid.level <= bid.level:
                        nxt.add(nid)
        flagged |= nxt
        frontier = nxt
    return sorted(flagged, key=lambda b: (b.morton_key(), b.level))


def compute_flags(
    forest: BlockForest,
    criterion: RefinementCriterion,
    *,
    buffer_band: int = 1,
) -> Tuple[List[BlockID], List[BlockID]]:
    """One-stop flag computation: evaluate + buffer + de-conflict.

    Blocks pulled into the refine set by the buffer band are removed from
    the coarsen set.
    """
    refine, coarsen, _ = criterion.evaluate(forest)
    if buffer_band > 0:
        refine = buffer_flags(forest, refine, band=buffer_band)
    refine_set = set(refine)
    coarsen = [b for b in coarsen if b not in refine_set]
    return refine, coarsen
