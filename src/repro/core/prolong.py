"""Prolongation operators: coarse cells → fine block data.

Prolongation is used (a) to fill a block's ghost cells from a *coarser*
face neighbor and (b) to initialize 2^d children when a block is
refined.  Two operators are provided:

``prolong_inject``
    Piecewise-constant injection — each coarse value copied into its
    2^d fine sub-cells.  First-order accurate, trivially conservative.

``prolong_linear``
    Limited piecewise-linear reconstruction — fine values are the coarse
    value plus minmod-limited slope contributions of ``± dx/4`` per axis.
    Second-order accurate on smooth data, still exactly conservative
    (the slope terms cancel in each 2^d group), and monotone thanks to
    the limiter.  This matches the higher-resolution (van Leer ref. [6])
    operators discussed in the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["prolong_inject", "prolong_linear", "minmod"]

# Sign-pattern arrays (-1/4, +1/4 alternating) reused across calls; the
# ghost exchange prolongs thousands of small regions per step and the
# pattern only depends on (array rank, axis, extent).
_SIGN_CACHE: dict = {}


def _sign_pattern(rank: int, ax: int, n_fine: int) -> np.ndarray:
    key = (rank, ax, n_fine)
    cached = _SIGN_CACHE.get(key)
    if cached is None:
        shape = [1] * rank
        shape[ax] = n_fine
        cached = np.where(np.arange(n_fine) % 2 == 0, -0.25, 0.25).reshape(shape)
        _SIGN_CACHE[key] = cached
    return cached


def _duplicate(arr: np.ndarray, ndim: int) -> np.ndarray:
    """Repeat each cell twice along every spatial axis (axes 1..ndim)."""
    out = arr
    for axis in range(1, ndim + 1):
        out = np.repeat(out, 2, axis=axis)
    return out


def prolong_inject(coarse: np.ndarray, ndim: int) -> np.ndarray:
    """Piecewise-constant prolongation.

    Parameters
    ----------
    coarse:
        Array of shape ``(nvar, n1, ..., nd)``.
    ndim:
        Number of spatial dimensions.

    Returns
    -------
    Array of shape ``(nvar, 2*n1, ..., 2*nd)``.
    """
    if coarse.ndim != ndim + 1:
        raise ValueError(
            f"expected {ndim + 1} array dims (nvar + space), got {coarse.ndim}"
        )
    return _duplicate(coarse, ndim)


def minmod(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Minmod limiter: the smaller-magnitude argument where signs agree,
    zero where they differ."""
    same_sign = a * b > 0.0
    return np.where(same_sign, np.where(np.abs(a) < np.abs(b), a, b), 0.0)


def prolong_linear(
    coarse_with_border: np.ndarray, ndim: int, *, limited: bool = True
) -> np.ndarray:
    """Limited-linear prolongation of the *interior* of a bordered array.

    Parameters
    ----------
    coarse_with_border:
        Array of shape ``(nvar, n1+2, ..., nd+2)``: the region to prolong
        plus a one-cell border on every side, used to form slopes.  The
        border itself is not prolonged.
    ndim:
        Number of spatial dimensions.
    limited:
        Apply the minmod limiter to the one-sided differences (default).
        With ``limited=False`` plain central differences are used
        (strictly second order, but can overshoot at discontinuities).

    Returns
    -------
    Array of shape ``(nvar, 2*n1, ..., 2*nd)`` covering only the interior
    region refined by 2 per axis.
    """
    if coarse_with_border.ndim != ndim + 1:
        raise ValueError(
            f"expected {ndim + 1} array dims (nvar + space), got "
            f"{coarse_with_border.ndim}"
        )
    for n in coarse_with_border.shape[1:]:
        if n < 3:
            raise ValueError(
                "bordered array must be at least 3 cells per axis "
                f"(1 interior + 2 border), got extent {n}"
            )
    inner = (slice(None),) + (slice(1, -1),) * ndim
    center = coarse_with_border[inner]
    fine = _duplicate(center, ndim)

    # Add per-axis slope contributions: fine cell offset within the coarse
    # cell is -1/4 (low sub-cell) or +1/4 (high sub-cell) of the coarse dx,
    # and the undivided slope is per coarse cell, so the contribution is
    # +/- slope/4.  Contributions are added axis by axis; conservation
    # holds because the +/- terms cancel pairwise within each 2^d group.
    for axis in range(ndim):
        ax = axis + 1  # spatial axes start after the variable axis
        sl_lo = [slice(1, -1)] * ndim
        sl_hi = [slice(1, -1)] * ndim
        sl_lo[axis] = slice(0, -2)
        sl_hi[axis] = slice(2, None)
        lo = coarse_with_border[(slice(None),) + tuple(sl_lo)]
        hi = coarse_with_border[(slice(None),) + tuple(sl_hi)]
        if limited:
            slope = minmod(center - lo, hi - center)
        else:
            slope = 0.5 * (hi - lo)
        slope_fine = _duplicate(slope, ndim)
        # Sign pattern along this axis: -1/4 for even fine index, +1/4 odd.
        sign = _sign_pattern(fine.ndim, ax, fine.shape[ax])
        fine += sign * slope_fine
    return fine
