"""Adaptive blocks — the paper's core data structure.

Public surface:

* :class:`BlockID`, :class:`IndexBox` — logical addressing & index algebra
* :class:`Block`, :class:`FaceNeighbors`, :class:`NeighborKind` — one block
* :class:`BlockForest`, :class:`AdaptSummary` — the dynamic decomposition
* :func:`fill_ghosts`, :func:`iter_transfers`, :class:`Transfer` — ghost
  exchange
* prolongation / restriction operators
* refinement criteria
"""

from repro.core.block import Block, FaceNeighbors, NeighborKind
from repro.core.block_id import BlockID, IndexBox
from repro.core.forest import AdaptSummary, BlockForest, ForestError
from repro.core.ghost import (
    Transfer,
    all_offsets,
    apply_physical_bc,
    fill_ghosts,
    iter_transfers,
    region_owners,
)
from repro.core.prolong import minmod, prolong_inject, prolong_linear
from repro.core.reflux import FluxRegister
from repro.core.refine_criteria import (
    MonitorCriterion,
    RefinementCriterion,
    buffer_flags,
    compute_flags,
    curvature_indicator,
    geometric_indicator,
    gradient_indicator,
)
from repro.core.restrict import restrict_mean

__all__ = [
    "Block",
    "FaceNeighbors",
    "NeighborKind",
    "BlockID",
    "IndexBox",
    "AdaptSummary",
    "BlockForest",
    "ForestError",
    "Transfer",
    "all_offsets",
    "apply_physical_bc",
    "fill_ghosts",
    "iter_transfers",
    "region_owners",
    "FluxRegister",
    "minmod",
    "prolong_inject",
    "prolong_linear",
    "MonitorCriterion",
    "RefinementCriterion",
    "buffer_flags",
    "compute_flags",
    "curvature_indicator",
    "geometric_indicator",
    "gradient_indicator",
    "restrict_mean",
]
