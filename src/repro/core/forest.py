"""The block forest: the paper's adaptive block decomposition.

A :class:`BlockForest` partitions a rectangular domain into
non-overlapping adaptive blocks (only *leaves* exist — unlike a
cell-based tree there are no interior nodes, so no region is represented
twice).  It supports:

* refinement — replace a block with its ``2^d`` children, each again an
  ``m1 × ... × md`` cell array with cell extents halved per axis;
* coarsening — the exact reverse;
* the paper's *refinement-level constraint*: adjacent blocks differ by
  at most ``max_level_jump`` levels (default 1), enforced by cascading
  refinement across the grid;
* explicit per-face neighbor pointers, recomputed after every topology
  change so neighbor location is a direct lookup (no tree traversal);
* periodic or physical domain boundaries per axis.

The forest is deterministic: iteration follows the Morton space-filling
curve, and all adaptation decisions are order-independent.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.arena import BlockArena
from repro.core.block import Block, FaceNeighbors, NeighborKind
from repro.core.block_id import BlockID, IndexBox
from repro.core.prolong import prolong_inject, prolong_linear
from repro.core.restrict import restrict_mean
from repro.util.geometry import (
    Box,
    child_offsets,
    face_axis,
    face_side,
    iter_faces,
    opposite_face,
)

__all__ = ["BlockForest", "AdaptSummary", "ForestError"]


class ForestError(RuntimeError):
    """Raised when the forest is found in an inconsistent state."""


@dataclass
class AdaptSummary:
    """What one :meth:`BlockForest.adapt` call did."""

    refined: int = 0
    coarsened: int = 0
    cascaded: int = 0          #: extra refinements forced by the level constraint
    coarsen_vetoed: int = 0    #: coarsen flags dropped to preserve the constraint

    @property
    def changed(self) -> bool:
        return self.refined > 0 or self.coarsened > 0


class BlockForest:
    """Dynamic adaptive-block decomposition of a rectangular domain.

    Parameters
    ----------
    domain:
        Physical bounding box of the whole computational region.
    n_root:
        Number of root (level-0) blocks per axis.  Need not be equal per
        axis — this is the paper's "initial block configuration need not
        be Cartesian [unit cube]" generalization in its rectangular form.
    m:
        Cells per block per axis (even, ``>= 2 * n_ghost``).
    nvar:
        Number of state variables stored per cell.
    n_ghost:
        Ghost layers around each block (1 for first-order operators,
        2 for higher-resolution schemes).
    periodic:
        Per-axis periodicity flags (default: all False).
    max_level:
        Maximum refinement level (roots are level 0).
    max_level_jump:
        Maximum refinement-level difference across a shared face
        (default 1 — the paper's standard constraint; larger values are
        the paper's "loosened constraint" generalization).
    prolong_order:
        1 = piecewise-constant injection, 2 = limited linear (default).
    """

    def __init__(
        self,
        domain: Box,
        n_root: Sequence[int],
        m: Sequence[int],
        nvar: int,
        *,
        n_ghost: int = 2,
        periodic: Optional[Sequence[bool]] = None,
        max_level: int = 10,
        max_level_jump: int = 1,
        prolong_order: int = 2,
    ) -> None:
        self.domain = domain
        self.ndim = domain.ndim
        self.n_root = tuple(int(n) for n in n_root)
        self.m = tuple(int(mi) for mi in m)
        self.nvar = int(nvar)
        self.n_ghost = int(n_ghost)
        self.max_level = int(max_level)
        self.max_level_jump = int(max_level_jump)
        self.prolong_order = int(prolong_order)
        if len(self.n_root) != self.ndim or len(self.m) != self.ndim:
            raise ValueError("n_root / m dimension mismatch with domain")
        if any(n < 1 for n in self.n_root):
            raise ValueError(f"n_root must be >= 1 per axis, got {self.n_root}")
        if self.max_level_jump < 1:
            raise ValueError("max_level_jump must be >= 1")
        if self.prolong_order not in (1, 2):
            raise ValueError("prolong_order must be 1 or 2")
        self.periodic = (
            tuple(bool(p) for p in periodic)
            if periodic is not None
            else (False,) * self.ndim
        )
        if len(self.periodic) != self.ndim:
            raise ValueError("periodic dimension mismatch")

        self.blocks: Dict[BlockID, Block] = {}
        #: total refinements/coarsenings performed (for adaptation-cost stats)
        self.n_refinements = 0
        self.n_coarsenings = 0
        #: topology revision: bumped on every refine/coarsen; consumers
        #: (ghost-exchange plans, partitions) key their caches on it.
        self.revision = 0
        self._sorted_cache: Optional[List[BlockID]] = None
        #: pooled storage: every block's padded array is a row of one
        #: contiguous pool; all allocation/release routes through it.
        n_roots = 1
        for n in self.n_root:
            n_roots *= n
        self.arena = BlockArena(
            self.m, self.n_ghost, self.nvar, initial_capacity=n_roots
        )

        for coords in IndexBox((0,) * self.ndim, self.n_root).iter_cells():
            bid = BlockID(0, coords)
            self.blocks[bid] = self._make_block(bid)
        self.update_neighbors()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _make_block(self, bid: BlockID, data: Optional[np.ndarray] = None) -> Block:
        row = self.arena.acquire()
        blk = Block(
            id=bid,
            box=self.block_box(bid),
            m=self.m,
            n_ghost=self.n_ghost,
            nvar=self.nvar,
            data=self.arena.view(row),
        )
        self.arena.bind(row, blk)
        if data is not None:
            blk.data[...] = data
        return blk

    def __deepcopy__(self, memo: Dict[int, Any]) -> "BlockForest":
        """Deep copy with arena views kept consistent.

        ``copy.deepcopy`` of an ndarray *view* yields an independent
        array, which would detach every block's ``data`` from the copied
        pool.  Re-bind them to their rows (the pool itself is copied with
        identical contents) and drop cached ghost plans, which hold raw
        views into the original pool.
        """
        cls = self.__class__
        clone = cls.__new__(cls)
        memo[id(self)] = clone
        state = dict(self.__dict__)
        state.pop("_ghost_plan", None)
        state.pop("_ghost_plan_key", None)
        clone.__dict__.update(copy.deepcopy(state, memo))
        for blk in clone.blocks.values():
            if blk.arena_row is not None:
                blk.data = clone.arena.pool[blk.arena_row]
        return clone

    def block_box(self, bid: BlockID) -> Box:
        """Physical bounding box of a block's computational region."""
        widths = self.domain.widths
        lo = []
        hi = []
        for axis in range(self.ndim):
            n_level = self.n_root[axis] << bid.level
            w = widths[axis] / n_level
            lo.append(self.domain.lo[axis] + bid.coords[axis] * w)
            hi.append(self.domain.lo[axis] + (bid.coords[axis] + 1) * w)
        return Box(tuple(lo), tuple(hi))

    def level_extent(self, level: int) -> Tuple[int, ...]:
        """Blocks per axis at the given level."""
        return tuple(n << level for n in self.n_root)

    def level_cell_extent(self, level: int) -> Tuple[int, ...]:
        """Global cells per axis at the given level."""
        return tuple((n << level) * mi for n, mi in zip(self.n_root, self.m))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def n_cells(self) -> int:
        """Total computational (non-ghost) cells."""
        per_block = 1
        for mi in self.m:
            per_block *= mi
        return per_block * self.n_blocks

    @property
    def levels(self) -> Tuple[int, int]:
        """(min, max) refinement level among current blocks."""
        ls = [bid.level for bid in self.blocks]
        return (min(ls), max(ls))

    def sorted_ids(self) -> List[BlockID]:
        """Block IDs in deterministic Morton (SFC) order."""
        if self._sorted_cache is None:
            self._sorted_cache = sorted(
                self.blocks, key=lambda b: (b.morton_key(), b.level)
            )
        return self._sorted_cache

    def __iter__(self) -> Iterator[Block]:
        for bid in self.sorted_ids():
            yield self.blocks[bid]

    def __len__(self) -> int:
        return len(self.blocks)

    def __contains__(self, bid: BlockID) -> bool:
        return bid in self.blocks

    def block_at(self, point: Sequence[float]) -> Block:
        """The leaf block containing a physical point (O(max_level))."""
        if not self.domain.contains(point):
            raise ValueError(f"point {point} outside domain")
        for level in range(self.max_level + 1):
            coords = []
            for axis in range(self.ndim):
                n_level = self.n_root[axis] << level
                w = self.domain.widths[axis] / n_level
                c = int((point[axis] - self.domain.lo[axis]) / w)
                coords.append(min(c, n_level - 1))
            bid = BlockID(level, tuple(coords))
            if bid in self.blocks:
                return self.blocks[bid]
        raise ForestError(f"no leaf block contains {point}")

    def _invalidate(self) -> None:
        self.revision += 1
        self._sorted_cache = None

    # ------------------------------------------------------------------
    # neighbor pointers (the paper's explicit connectivity)
    # ------------------------------------------------------------------

    def _wrap_coord(self, level: int, axis: int, c: int) -> Tuple[Optional[int], int]:
        """Wrap a block coordinate; returns (coord, wrap_sign) or (None, 0)
        when the coordinate leaves a non-periodic domain.

        ``wrap_sign`` is +1 when the neighbor was reached by wrapping off
        the low edge (so converting indices into the neighbor frame adds
        one domain extent) and -1 for the high edge.
        """
        extent = self.n_root[axis] << level
        if 0 <= c < extent:
            return c, 0
        if not self.periodic[axis]:
            return None, 0
        if c < 0:
            return c + extent, +1
        return c - extent, -1

    def find_face_neighbors(self, bid: BlockID, face: int) -> FaceNeighbors:
        """Compute the neighbor pointer set across one face of a leaf."""
        axis, side = face_axis(face), face_side(face)
        c = bid.coords[axis] + (1 if side else -1)
        c_wrapped, wrap = self._wrap_coord(bid.level, axis, c)
        if c_wrapped is None:
            return FaceNeighbors(NeighborKind.BOUNDARY, (), (0,) * self.ndim)
        shift = tuple(wrap if a == axis else 0 for a in range(self.ndim))
        coords = bid.coords[:axis] + (c_wrapped,) + bid.coords[axis + 1 :]
        cand = BlockID(bid.level, coords)
        if cand in self.blocks:
            return FaceNeighbors(NeighborKind.SAME, (cand,), shift)
        # Coarser: some ancestor of the candidate is a leaf.
        anc = cand
        while anc.level > 0:
            anc = anc.parent
            if anc in self.blocks:
                return FaceNeighbors(NeighborKind.COARSER, (anc,), shift)
        # Finer: the candidate's descendants touching my face are leaves.
        ids = self._descendant_leaves_on_face(cand, opposite_face(face))
        if ids:
            return FaceNeighbors(NeighborKind.FINER, tuple(sorted(ids)), shift)
        raise ForestError(
            f"no leaf found across face {face} of {bid}; forest inconsistent"
        )

    def _descendant_leaves_on_face(self, bid: BlockID, face: int) -> List[BlockID]:
        """Leaves strictly below ``bid`` whose ``face`` lies on bid's face."""
        axis, side = face_axis(face), face_side(face)
        result: List[BlockID] = []
        stack = [bid]
        while stack:
            cur = stack.pop()
            if cur.level > self.max_level:
                continue
            for child in cur.children():
                if (child.coords[axis] & 1) != side:
                    continue
                if child in self.blocks:
                    result.append(child)
                else:
                    stack.append(child)
        return result

    def update_neighbors(self, only: Optional[Iterable[BlockID]] = None) -> None:
        """Recompute explicit neighbor pointers.

        With ``only`` given, just those leaves are refreshed — the
        incremental path :meth:`adapt` uses, since a topology change only
        invalidates pointers of blocks adjacent to the changed region
        (the paper's neighbor lists are likewise maintained locally, not
        rebuilt globally).
        """
        targets = (
            self.blocks.keys()
            if only is None
            else [b for b in only if b in self.blocks]
        )
        for bid in targets:
            self.blocks[bid].face_neighbors = {
                face: self.find_face_neighbors(bid, face)
                for face in iter_faces(self.ndim)
            }

    def neighbor_leaf_levels(self, bid: BlockID) -> List[int]:
        """Levels of every leaf sharing a face with ``bid`` (uses pointers)."""
        block = self.blocks[bid]
        levels: List[int] = []
        for fn in block.face_neighbors.values():
            levels.extend(n.level for n in fn.ids)
        return levels

    def check_balance(self) -> None:
        """Validate the level-jump constraint; raise ForestError on failure."""
        for bid in self.blocks:
            for lvl in self.neighbor_leaf_levels(bid):
                if abs(lvl - bid.level) > self.max_level_jump:
                    raise ForestError(
                        f"balance violated: {bid} (level {bid.level}) has a "
                        f"face neighbor at level {lvl} with max jump "
                        f"{self.max_level_jump}"
                    )

    def check_coverage(self) -> None:
        """Validate that leaves tile the domain exactly once (by volume)."""
        total = sum(self.blocks[bid].box.volume for bid in self.blocks)
        if not np.isclose(total, self.domain.volume, rtol=1e-10):
            raise ForestError(
                f"coverage violated: leaf volume {total} != domain volume "
                f"{self.domain.volume}"
            )

    def check_no_overlap(self) -> None:
        """Validate that no leaf is a descendant of another leaf (every
        region represented exactly once); raise ForestError on failure.

        Complements :meth:`check_coverage`: correct total volume can
        hide an overlap paired with a hole — together the two checks pin
        down an exact tiling.
        """
        for bid in self.blocks:
            anc = bid
            while anc.level > 0:
                anc = anc.parent
                if anc in self.blocks:
                    raise ForestError(
                        f"overlap violated: leaf {bid} and its ancestor "
                        f"{anc} are both present"
                    )

    # ------------------------------------------------------------------
    # refinement / coarsening
    # ------------------------------------------------------------------

    def refine(self, bid: BlockID, *, update: bool = True) -> Tuple[BlockID, ...]:
        """Replace a leaf with its 2^d children; prolong its data.

        With ``update=False`` the neighbor-pointer rebuild is skipped so
        batch operations (``adapt``) can do it once at the end.
        """
        if bid not in self.blocks:
            raise KeyError(f"{bid} is not a leaf")
        if bid.level >= self.max_level:
            raise ForestError(f"cannot refine {bid}: already at max level")
        parent = self.blocks.pop(bid)
        self._invalidate()
        children = bid.children()

        # Prolong the parent interior (with one-cell ghost border for
        # slopes) to a double-resolution array, then hand each child its
        # quadrant/octant.
        g = self.n_ghost
        border = tuple(slice(g - 1, g + mi + 1) for mi in self.m)
        bordered = parent.data[(slice(None),) + border]
        if self.prolong_order == 2:
            fine = prolong_linear(bordered, self.ndim)
        else:
            inner = (slice(None),) + tuple(slice(1, -1) for _ in self.m)
            fine = prolong_inject(bordered[inner], self.ndim)
        # ``fine`` is a fresh array, so the parent's pool row can be
        # recycled before the children are allocated into it.
        self.arena.release(parent)

        for child, off in zip(children, child_offsets(self.ndim)):
            blk = self._make_block(child)
            src = tuple(
                slice(o * mi, o * mi + mi) for o, mi in zip(off, self.m)
            )
            blk.interior[...] = fine[(slice(None),) + src]
            self.blocks[child] = blk
        self.n_refinements += 1
        if update:
            self.update_neighbors()
        return children

    def coarsen(self, parent_id: BlockID, *, update: bool = True) -> BlockID:
        """Replace 2^d sibling leaves by their parent; restrict their data."""
        children = parent_id.children()
        for child in children:
            if child not in self.blocks:
                raise KeyError(
                    f"cannot coarsen {parent_id}: child {child} is not a leaf"
                )
        blk = self._make_block(parent_id)
        for child, off in zip(children, child_offsets(self.ndim)):
            child_blk = self.blocks.pop(child)
            dst = tuple(
                slice(o * mi // 2, o * mi // 2 + mi // 2)
                for o, mi in zip(off, self.m)
            )
            blk.interior[(slice(None),) + dst] = restrict_mean(
                child_blk.interior, self.ndim
            )
            self.arena.release(child_blk)
        self._invalidate()
        self.blocks[parent_id] = blk
        self.n_coarsenings += 1
        if update:
            self.update_neighbors()
        return parent_id

    # ------------------------------------------------------------------
    # flag-driven adaptation with constraint enforcement
    # ------------------------------------------------------------------

    def adapt(
        self,
        refine_flags: Iterable[BlockID],
        coarsen_flags: Iterable[BlockID] = (),
    ) -> AdaptSummary:
        """Apply refinement/coarsening flags while preserving invariants.

        Refinement flags may *cascade*: refining a block can force the
        refinement of coarser neighbors to keep the level-jump constraint
        — the effect the paper describes as "refinement can potentially
        cascade across the grid".  Coarsening is vetoed when it would
        break the constraint, when not all 2^d siblings are flagged, or
        when the block is also flagged for refinement.
        """
        summary = AdaptSummary()
        refine_set: Set[BlockID] = {
            b for b in refine_flags if b in self.blocks and b.level < self.max_level
        }
        coarsen_set: Set[BlockID] = {
            b
            for b in coarsen_flags
            if b in self.blocks and b.level > 0 and b not in refine_set
        }
        requested = set(refine_set)

        # --- cascade refinement to a fixpoint -------------------------
        # planned level of each current leaf after the refines.
        def planned_level(bid: BlockID) -> int:
            return bid.level + 1 if bid in refine_set else bid.level

        changed = True
        while changed:
            changed = False
            for bid in list(refine_set):
                for fn in self.blocks[bid].face_neighbors.values():
                    for nid in fn.ids:
                        if planned_level(nid) < bid.level + 1 - self.max_level_jump:
                            if (
                                nid in self.blocks
                                and nid.level < self.max_level
                                and nid not in refine_set
                            ):
                                refine_set.add(nid)
                                coarsen_set.discard(nid)
                                changed = True

        summary.cascaded = len(refine_set - requested)

        # --- veto invalid coarsening -----------------------------------
        valid_parents: Set[BlockID] = set()
        seen_parents: Set[BlockID] = set()
        vetoed = 0
        for bid in coarsen_set:
            parent = bid.parent
            if parent in seen_parents:
                continue
            seen_parents.add(parent)
            siblings = parent.children()
            if not all(s in coarsen_set for s in siblings):
                vetoed += 1
                continue
            # After merging, the parent (level L-1) must not face a leaf
            # finer than L-1+max_jump.  Check planned neighbor levels of
            # every sibling (excluding the siblings themselves).
            sib_set = set(siblings)
            ok = True
            for s in siblings:
                for fn in self.blocks[s].face_neighbors.values():
                    for nid in fn.ids:
                        if nid in sib_set:
                            continue
                        if planned_level(nid) > parent.level + self.max_level_jump:
                            ok = False
                            break
                    if not ok:
                        break
                if not ok:
                    break
            if ok:
                valid_parents.add(parent)
            else:
                vetoed += 1
        summary.coarsen_vetoed = vetoed

        # --- apply (deterministic order) -------------------------------
        # Collect the dirty region before mutating: every leaf adjacent
        # to a changed block needs its pointers refreshed, and so do the
        # created blocks themselves.  Nothing farther away can change.
        affected: Set[BlockID] = set()
        for parent in valid_parents:
            for child in parent.children():
                affected.add(parent)
                for fn in self.blocks[child].face_neighbors.values():
                    affected.update(fn.ids)
        for bid in refine_set:
            affected.update(bid.children())
            for fn in self.blocks[bid].face_neighbors.values():
                affected.update(fn.ids)
        for parent in sorted(valid_parents, key=lambda b: (b.morton_key(), b.level)):
            self.coarsen(parent, update=False)
            summary.coarsened += 1
        for bid in sorted(refine_set, key=lambda b: (b.morton_key(), b.level)):
            self.refine(bid, update=False)
            summary.refined += 1
        if summary.changed:
            self.update_neighbors(only=affected)
        return summary

    def refine_uniformly(self, times: int = 1) -> None:
        """Refine every block ``times`` times (uniform grid at level+times)."""
        for _ in range(times):
            self.adapt(list(self.blocks))

    def refine_where(
        self, predicate: Callable[[Block], bool], max_rounds: int = 64
    ) -> int:
        """Repeatedly refine blocks satisfying ``predicate`` until stable.

        Returns the number of adaptation rounds performed.  Useful to set
        up statically refined initial grids (e.g. refine near a body).
        """
        rounds = 0
        for _ in range(max_rounds):
            flags = [blk.id for blk in self if predicate(blk)]
            if not flags:
                break
            summary = self.adapt(flags)
            rounds += 1
            if not summary.changed:
                break
        return rounds

    # ------------------------------------------------------------------
    # statistics used by the benchmark tables
    # ------------------------------------------------------------------

    def neighbor_count_stats(self) -> Dict[str, float]:
        """Distribution of per-face neighbor counts (T-B benchmark)."""
        counts: List[int] = []
        for block in self.blocks.values():
            for fn in block.face_neighbors.values():
                if fn.kind != NeighborKind.BOUNDARY:
                    counts.append(len(fn.ids))
        if not counts:
            return {"max": 0.0, "mean": 0.0, "total_pointers": 0.0}
        return {
            "max": float(max(counts)),
            "mean": float(np.mean(counts)),
            "total_pointers": float(sum(counts)),
        }

    def ghost_cell_ratio(self) -> float:
        """Total ghost cells / total computational cells across the forest."""
        ghost = sum(b.n_ghost_cells for b in self.blocks.values())
        real = sum(b.n_cells for b in self.blocks.values())
        return ghost / real if real else 0.0

    def level_histogram(self) -> Dict[int, int]:
        """Number of blocks per refinement level."""
        hist: Dict[int, int] = {}
        for bid in self.blocks:
            hist[bid.level] = hist.get(bid.level, 0) + 1
        return dict(sorted(hist.items()))
