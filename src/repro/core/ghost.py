"""Ghost-cell exchange between adaptive blocks.

Each block carries ``n_ghost`` layers of ghost cells holding copies of
neighboring blocks' data so that stencil kernels can run over the whole
interior without any neighbor indirection — the paper's key performance
mechanism.  Three transfer kinds occur:

* **copy** — the neighbor is at the same level: direct slab copy;
* **prolongation** — the neighbor is coarser: its cells are interpolated
  (injection or limited linear) onto my finer ghost cells;
* **restriction** — the neighbors are finer: their cells are
  volume-averaged onto my coarser ghost cells.

Ghost regions are organized by *offset vector*: each of the ``3^d - 1``
directions around a block (its faces, edges and corners) is an
independent region whose owner leaves are located through the same
integer arithmetic that backs the forest's explicit face pointers — this
is the paper's generalized connectivity ("the neighbor pointers can be
extended to include blocks sharing low dimensional boundaries").

The exchange runs in two stages so prolongation can use valid slope
borders:

1. same-level copies and fine→coarse restrictions (read interiors only);
2. coarse→fine prolongations (slope borders may read the source's own
   ghost cells, valid after stage 1).

Restriction uses volume-weighted accumulation across all fine owners of
a region, so ghost cells straddling several fine blocks — or blocks at
different levels, which occur across edges/corners even under 2:1 face
balance — are filled exactly.

The same geometry is exposed as a stream of :class:`Transfer` records
(:func:`iter_transfers`) so the simulated parallel machine can account
messages without touching any arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.core.block import Block, NeighborKind
from repro.core.block_id import BlockID, IndexBox
from repro.core.forest import BlockForest, ForestError
from repro.core.prolong import prolong_inject, prolong_linear
from repro.core.restrict import restrict_mean
from repro.obs.metrics import METRICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernels.base import KernelBackend

__all__ = [
    "Transfer",
    "fill_ghosts",
    "iter_transfers",
    "region_owners",
    "all_offsets",
    "BoundaryHandler",
]

#: Signature of a physical boundary-condition callback: it must fill the
#: ghost cells of ``block`` inside ``region`` (a global-index box at the
#: block's level covering the boundary slab of ``face``).
BoundaryHandler = Callable[[Block, int, IndexBox, BlockForest], None]


@dataclass(frozen=True)
class Transfer:
    """One block-to-block ghost data movement.

    ``src_box`` is given in the *source* block's frame at the source
    level; ``dst_box`` in the destination frame at the destination level.
    ``shift`` maps destination-frame indices (at the destination level)
    into the source frame — non-zero only across periodic boundaries.
    ``offset`` is the direction vector of the ghost region being filled.
    """

    dst_id: BlockID
    src_id: BlockID
    offset: Tuple[int, ...]
    src_box: IndexBox
    dst_box: IndexBox
    shift: Tuple[int, ...]

    @property
    def delta(self) -> int:
        """Source level minus destination level (+ = finer source)."""
        return self.src_id.level - self.dst_id.level

    @property
    def kind(self) -> str:
        if self.delta == 0:
            return NeighborKind.SAME
        return NeighborKind.FINER if self.delta > 0 else NeighborKind.COARSER

    @property
    def is_face(self) -> bool:
        return sum(1 for o in self.offset if o != 0) == 1

    @property
    def message_cells(self) -> int:
        """Cells that cross the wire in a distributed implementation.

        Fine→coarse data is restricted *before* sending and coarse→fine
        is prolonged *after* receiving (both standard), so the message
        always carries the smaller representation.
        """
        return min(self.src_box.size, self.dst_box.size)


def all_offsets(ndim: int, *, faces_only: bool = False) -> List[Tuple[int, ...]]:
    """The ``3^d - 1`` ghost-region direction vectors (faces first)."""
    out: List[Tuple[int, ...]] = []

    def rec(axis: int, cur: Tuple[int, ...]) -> None:
        if axis == ndim:
            if any(cur):
                out.append(cur)
            return
        for v in (-1, 0, 1):
            rec(axis + 1, cur + (v,))

    rec(0, ())
    out.sort(key=lambda o: (sum(1 for v in o if v != 0), o))
    if faces_only:
        out = [o for o in out if sum(1 for v in o if v != 0) == 1]
    return out


def ghost_region_for_offset(block: Block, offset: Sequence[int]) -> IndexBox:
    """Ghost slab of a block in the given direction, global indices."""
    ib = block.cell_box
    lo = list(ib.lo)
    hi = list(ib.hi)
    g = block.n_ghost
    for axis, o in enumerate(offset):
        if o < 0:
            hi[axis] = lo[axis]
            lo[axis] -= g
        elif o > 0:
            lo[axis] = hi[axis]
            hi[axis] += g
    return IndexBox(tuple(lo), tuple(hi))


def region_owners(
    forest: BlockForest, bid: BlockID, offset: Sequence[int]
) -> Optional[Tuple[Tuple[int, ...], List[BlockID]]]:
    """Leaves covering the ghost region of ``bid`` in direction ``offset``.

    Returns ``(wrap, owners)`` where ``wrap`` is the per-axis periodic
    wrap sign, or None when the region lies outside a non-periodic domain
    boundary.  Owners are: the same-level neighbor slot if it is a leaf,
    its leaf ancestor if one exists (exactly one — coarser), or every
    finer leaf whose cells intersect the ghost region (the region is
    ``n_ghost`` cells deep, so with deep refinement it can intersect
    several layers of fine leaves, not only those touching the shared
    face/edge/corner).
    """
    coords: List[int] = []
    wrap: List[int] = []
    for axis in range(forest.ndim):
        c = bid.coords[axis] + offset[axis]
        c_wrapped, w = forest._wrap_coord(bid.level, axis, c)
        if c_wrapped is None:
            return None
        coords.append(c_wrapped)
        wrap.append(w)
    cand = BlockID(bid.level, tuple(coords))
    if cand in forest.blocks:
        return tuple(wrap), [cand]
    anc = cand
    while anc.level > 0:
        anc = anc.parent
        if anc in forest.blocks:
            return tuple(wrap), [anc]
    # Finer: descend through the candidate slot collecting every leaf
    # whose cells intersect the (wrapped) ghost region.
    g = forest.n_ghost
    region = IndexBox(
        tuple(
            bid.coords[a] * forest.m[a] + (forest.m[a] if o > 0 else (-g if o < 0 else 0))
            for a, o in enumerate(offset)
        ),
        tuple(
            bid.coords[a] * forest.m[a]
            + (forest.m[a] + g if o > 0 else (0 if o < 0 else forest.m[a]))
            for a, o in enumerate(offset)
        ),
    ).shift(_cell_shift(forest, wrap, bid.level))
    owners: List[BlockID] = []
    stack = [cand]
    while stack:
        cur = stack.pop()
        if cur.level > forest.max_level:
            continue
        for child in cur.children():
            delta = child.level - bid.level
            if region.refined(delta).intersect(child.cell_box(forest.m)).empty:
                continue
            if child in forest.blocks:
                owners.append(child)
            else:
                stack.append(child)
    if not owners:
        raise ForestError(
            f"no leaf covers offset {tuple(offset)} of {bid}; forest inconsistent"
        )
    return tuple(wrap), sorted(owners)


def _cell_shift(
    forest: BlockForest, wrap: Sequence[int], level: int
) -> Tuple[int, ...]:
    """Periodic wrap displacement in cells at the given level."""
    return tuple(
        w * (n << level) * mi
        for w, n, mi in zip(wrap, forest.n_root, forest.m)
    )


def _neg(t: Sequence[int]) -> Tuple[int, ...]:
    return tuple(-x for x in t)


def _restrict_sum(arr: np.ndarray, ndim: int, times: int) -> np.ndarray:
    """Sum (not mean) over 2^d groups, applied ``times`` times."""
    for _ in range(times):
        spatial = arr.shape[1:]
        new_shape = [arr.shape[0]]
        for n in spatial:
            new_shape.extend((n // 2, 2))
        axes = tuple(2 * (a + 1) for a in range(ndim))
        arr = arr.reshape(new_shape).sum(axis=axes)
    return arr


def _align_out(box: IndexBox, factor: int) -> IndexBox:
    """Grow a box so both corners are multiples of ``factor``."""
    lo = tuple((a // factor) * factor for a in box.lo)
    hi = tuple(-((-b) // factor) * factor for b in box.hi)
    return IndexBox(lo, hi)


def prolongation_border(up: int, order: int) -> int:
    """Coarse border cells a prolongation payload must carry.

    Each linear step consumes one border cell per side; starting with a
    border of 2 keeps a >=1-cell border available at every subsequent
    level (border widths evolve as w -> 2*(w-1)), so every step is a
    genuine limited-linear prolongation and multi-level prolongation
    stays exact on linear fields.
    """
    if order == 1:
        return 0
    return 1 if up == 1 else 2


def gather_bordered(src: Block, region: IndexBox, border: int) -> np.ndarray:
    """Source-side half of a prolongation: extract ``region.grow(border)``
    from the source's padded array, edge-replicating where the border
    falls outside it (this is also the wire payload in the distributed
    emulation — coarse data travels, prolongation happens receiver-side,
    as in the real codes)."""
    if border == 0:
        return src.view(region).copy()
    desired = region.grow(border)
    avail = desired.intersect(src.padded_box)
    data = src.view(avail)
    pad = [(0, 0)] + [
        (al - dl, dh - ah)
        for dl, dh, al, ah in zip(desired.lo, desired.hi, avail.lo, avail.hi)
    ]
    if any(p != (0, 0) for p in pad[1:]):
        return np.pad(data, pad, mode="edge")
    return data.copy()


def prolong_bordered(
    data: np.ndarray, region: IndexBox, up: int, order: int, ndim: int
) -> np.ndarray:
    """Receiver-side half: prolong a bordered array ``up`` levels.

    ``data`` covers ``region.grow(prolongation_border(up, order))``;
    the result covers exactly ``region.refined(up)``.
    """
    if order == 1:
        out = data
        for _ in range(up):
            out = prolong_inject(out, ndim)
        return out
    covered = region.grow(prolongation_border(up, order))
    for _ in range(up):
        data = prolong_linear(data, ndim)
        covered = covered.grow(-1).refined(1)
    sl = region.refined(up).slices(covered.lo)
    return data[(slice(None),) + sl]


def _prolong_region(src: Block, region: IndexBox, up: int, order: int) -> np.ndarray:
    """Prolong ``region`` of a source block ``up`` levels finer.

    For order-2 prolongation the one-cell slope border is taken from the
    source's padded array where available (its ghost cells hold valid
    same-level/restricted data after stage 1) and edge-replicated where
    the border falls outside the padded array.  Returns an array covering
    exactly ``region.refined(up)``.
    """
    border = prolongation_border(up, order)
    return prolong_bordered(
        gather_bordered(src, region, border), region, up, order, src.ndim
    )


def _region_transfers(
    forest: BlockForest,
    block: Block,
    offset: Tuple[int, ...],
) -> Iterator[Transfer]:
    """Geometry of the transfers filling one ghost region of one block."""
    found = region_owners(forest, block.id, offset)
    if found is None:
        return
    wrap, owners = found
    level = block.level
    region = ghost_region_for_offset(block, offset)
    shift = _cell_shift(forest, wrap, level)
    region_src = region.shift(shift)
    for nid in owners:
        nb = forest.blocks[nid]
        delta = nid.level - level
        if delta == 0:
            r = region_src.intersect(nb.cell_box)
            if r.empty:
                continue
            yield Transfer(block.id, nid, offset, r, r.shift(_neg(shift)), shift)
        elif delta < 0:
            up = -delta
            rc = region_src.coarsened(up).intersect(nb.cell_box)
            if rc.empty:
                continue
            covered = rc.refined(up).intersect(region_src)
            yield Transfer(
                block.id, nid, offset, rc, covered.shift(_neg(shift)), shift
            )
        else:
            down = delta
            rf = region_src.refined(down).intersect(nb.cell_box)
            if rf.empty:
                continue
            dst = rf.coarsened(down).intersect(region_src).shift(_neg(shift))
            yield Transfer(block.id, nid, offset, rf, dst, shift)


@dataclass
class CompiledPlan:
    """A ghost exchange compiled down to array views and slice tuples.

    Built once per forest topology revision and arena layout epoch
    (owner searches and box intersections are the expensive part) and
    executed many times — mirroring how the paper's code rebuilds its
    neighbor pointers only on refinement/coarsening.
    """

    #: same-level transfers: (dst_view, src_view) array-view pairs
    copies: List[Tuple[np.ndarray, np.ndarray]]
    #: same-level transfer geometry: (dst_block, dst_box, src_block,
    #: src_box) per copy — the batched executor compiles these into flat
    #: pool indices.
    copy_meta: List[Tuple[Block, IndexBox, Block, IndexBox]]
    #: restrictions grouped per (destination block, region)
    restrict_groups: List[Tuple[Block, List[Transfer]]]
    #: prolongations: one entry per transfer
    prolongs: List[Tuple[Block, Block, Transfer]]
    #: physical-boundary slabs: (block, face, region)
    bc_faces: List[Tuple[Block, int, IndexBox]]
    n_transfers: int
    #: flat gather/scatter index arrays into the arena pool for the
    #: same-level copies, built lazily by :func:`_batched_copy_indices`.
    flat_dst: Optional[np.ndarray] = None
    flat_src: Optional[np.ndarray] = None


def _compile_plan(forest: BlockForest, fill_corners: bool) -> CompiledPlan:
    offsets = all_offsets(forest.ndim, faces_only=not fill_corners)
    copies: List[Tuple[np.ndarray, np.ndarray]] = []
    copy_meta: List[Tuple[Block, IndexBox, Block, IndexBox]] = []
    restrict_groups: List[Tuple[Block, List[Transfer]]] = []
    prolongs: List[Tuple[Block, Block, Transfer]] = []
    n = 0
    for bid in forest.sorted_ids():
        block = forest.blocks[bid]
        for offset in offsets:
            fine: List[Transfer] = []
            for t in _region_transfers(forest, block, offset):
                n += 1
                if t.delta == 0:
                    src = forest.blocks[t.src_id]
                    copies.append((block.view(t.dst_box), src.view(t.src_box)))
                    copy_meta.append((block, t.dst_box, src, t.src_box))
                elif t.delta > 0:
                    fine.append(t)
                else:
                    prolongs.append((block, forest.blocks[t.src_id], t))
            if fine:
                restrict_groups.append((block, fine))
    bc_faces: List[Tuple[Block, int, IndexBox]] = []
    _bc_scan_faces(forest, bc_faces)
    return CompiledPlan(copies, copy_meta, restrict_groups, prolongs, bc_faces, n)


def _bc_scan_faces(
    forest: BlockForest, bc_faces: List[Tuple[Block, int, IndexBox]]
) -> None:
    for axis in range(forest.ndim):
        other_axes = tuple(a for a in range(forest.ndim) if a != axis)
        for bid in forest.sorted_ids():
            block = forest.blocks[bid]
            for side in (0, 1):
                face = 2 * axis + side
                fn = block.face_neighbors.get(face)
                if fn is not None and fn.kind == NeighborKind.BOUNDARY:
                    bc_faces.append(
                        (block, face, block.ghost_region(face, other_axes))
                    )


def _get_plan(forest: BlockForest, fill_corners: bool) -> CompiledPlan:
    """The compiled exchange plan, cached on the topology revision and
    the arena layout epoch (the plan holds raw views into pool rows, so
    it is stale whenever rows move — growth or compaction)."""
    key = (forest.revision, forest.arena.layout_epoch, fill_corners)
    if getattr(forest, "_ghost_plan_key", None) != key:
        if METRICS.enabled:
            METRICS.inc("ghost.plan_misses")
        forest._ghost_plan = _compile_plan(forest, fill_corners)  # type: ignore[attr-defined]
        forest._ghost_plan_key = key  # type: ignore[attr-defined]
    elif METRICS.enabled:
        METRICS.inc("ghost.plan_hits")
    return forest._ghost_plan  # type: ignore[attr-defined]


def _batched_copy_indices(
    forest: BlockForest, plan: CompiledPlan
) -> Tuple[np.ndarray, np.ndarray]:
    """Flat pool indices executing every same-level copy at once.

    Element ``k`` of the pool's flat view at index ``flat_dst[k]`` takes
    the value at ``flat_src[k]``.  Valid because stage-1 copies read
    interiors only and write disjoint ghost regions only, so the single
    gather/scatter is order-independent and equals the sequential loop
    bit for bit.  Cached on the plan (which is itself keyed on revision
    + layout epoch, so the indices can never outlive the row layout).
    """
    if plan.flat_dst is not None and plan.flat_src is not None:
        return plan.flat_dst, plan.flat_src
    arena = forest.arena
    row_size = arena.row_size
    # int32 indices halve the gather/scatter's index traffic; the pool
    # would need > 2**31 elements (17 GB of float64) to overflow them.
    idx_dtype = np.intp if arena.pool.size > np.iinfo(np.int32).max else np.int32
    template = np.arange(row_size, dtype=idx_dtype).reshape(
        (arena.nvar,) + arena.padded
    )
    dst_parts: List[np.ndarray] = []
    src_parts: List[np.ndarray] = []
    for dst_blk, dst_box, src_blk, src_box in plan.copy_meta:
        if dst_blk.arena_row is None or src_blk.arena_row is None:
            raise ForestError(
                "batched ghost copies need arena-bound blocks"
            )
        dst_sl = (slice(None),) + dst_box.slices(dst_blk.index_origin)
        src_sl = (slice(None),) + src_box.slices(src_blk.index_origin)
        dst_parts.append(
            template[dst_sl].ravel() + dst_blk.arena_row * row_size
        )
        src_parts.append(
            template[src_sl].ravel() + src_blk.arena_row * row_size
        )
    empty = np.empty(0, dtype=np.intp)
    plan.flat_dst = np.concatenate(dst_parts) if dst_parts else empty
    plan.flat_src = np.concatenate(src_parts) if src_parts else empty
    return plan.flat_dst, plan.flat_src


def restriction_contribution(
    src: Block, t: Transfer, ndim: int
) -> Tuple[IndexBox, np.ndarray, np.ndarray]:
    """Source-side half of a restriction: one fine block's volume-
    weighted partial sums for a coarse region.

    Returns ``(coarse_box, value_sums, volume_sums)`` with the box in
    the *destination* frame.  This tuple is also the wire payload of a
    fine→coarse ghost message in the distributed emulation — the data is
    restricted before it travels, as in the real codes.
    """
    down = t.delta
    f = 1 << down
    aligned = _align_out(t.src_box, f)
    nvar = src.nvar
    data = np.zeros((nvar,) + aligned.shape)
    w = np.zeros(aligned.shape)
    inner = t.src_box.slices(aligned.lo)
    data[(slice(None),) + inner] = src.view(t.src_box)
    w[inner] = 1.0
    frac = (0.5 ** down) ** ndim
    csum = _restrict_sum(data, ndim, down) * frac
    wsum = _restrict_sum(w[np.newaxis], ndim, down)[0] * frac
    coarse_box = IndexBox(
        tuple(a >> down for a in aligned.lo),
        tuple(b >> down for b in aligned.hi),
    ).shift(_neg(t.shift))
    return coarse_box, csum, wsum


def apply_restrictions(
    block: Block,
    items: List[Tuple[IndexBox, IndexBox, np.ndarray, np.ndarray]],
) -> int:
    """Receiver-side half: accumulate restriction contributions.

    ``items`` holds ``(dst_box, coarse_box, value_sums, volume_sums)``
    per contributing fine source.  Each destination ghost cell takes the
    volume-weighted average of everything covering it; cells with
    (numerically) zero covered volume are left untouched — they belong
    to a different offset region or the physical boundary.
    """
    if not items:
        return 0
    ndim = block.ndim
    lo = tuple(min(it[0].lo[a] for it in items) for a in range(ndim))
    hi = tuple(max(it[0].hi[a] for it in items) for a in range(ndim))
    union = IndexBox(lo, hi)
    acc = np.zeros((block.nvar,) + union.shape)
    vol = np.zeros(union.shape)
    for _dst_box, coarse_box, csum, wsum in items:
        tgt = coarse_box.intersect(union)
        src_sl = tgt.slices(coarse_box.lo)
        dst_sl = tgt.slices(union.lo)
        acc[(slice(None),) + dst_sl] += csum[(slice(None),) + src_sl]
        vol[dst_sl] += wsum[src_sl]
    filled = vol > 1e-12
    if not filled.any():
        return 0
    view = block.view(union)
    out = np.where(filled, acc / np.where(filled, vol, 1.0), view)
    view[...] = out
    return len(items)


def _fill_restrictions(
    forest: BlockForest, block: Block, transfers: List[Transfer]
) -> int:
    """Volume-weighted restriction from (possibly several) fine owners."""
    items = []
    for t in transfers:
        src = forest.blocks[t.src_id]
        coarse_box, csum, wsum = restriction_contribution(src, t, forest.ndim)
        items.append((t.dst_box, coarse_box, csum, wsum))
    return apply_restrictions(block, items)


def iter_transfers(
    forest: BlockForest, *, fill_corners: bool = True
) -> Iterator[Transfer]:
    """Yield every Transfer of a full ghost exchange.

    Pure geometry — no data is moved.  Used by the parallel machine to
    build message schedules and by tests to inspect transfer regions.
    With ``fill_corners=False`` only face regions are included (the
    paper's minimal face-pointer connectivity).
    """
    offsets = all_offsets(forest.ndim, faces_only=not fill_corners)
    for bid in forest.sorted_ids():
        block = forest.blocks[bid]
        for offset in offsets:
            yield from _region_transfers(forest, block, offset)


def fill_ghosts(
    forest: BlockForest,
    bc: Optional[BoundaryHandler] = None,
    *,
    fill_corners: bool = True,
    batched_copies: bool = False,
    kernels: Optional["KernelBackend"] = None,
) -> int:
    """Fill every block's ghost cells from its neighbors.

    Physical-boundary ghost slabs are delegated to ``bc`` (see
    :mod:`repro.amr.boundary`); with ``bc=None`` they are left untouched.
    Returns the number of block-to-block transfers executed.

    With ``fill_corners=True`` (default) edge and corner ghost regions
    are exchanged as well, via the generalized lower-dimensional
    connectivity; ``False`` restricts the exchange to face slabs — all a
    first-order dimension-split scheme needs, and the paper's minimal
    configuration.

    With ``batched_copies=True`` the stage-1 same-level copies run as a
    single flat gather/scatter on the arena pool instead of one small
    slab assignment per transfer (the batched engine's path) — same
    cells, same values, just one numpy call.  ``kernels`` optionally
    routes that scatter through a kernel backend
    (:mod:`repro.kernels`) — bit-for-bit by contract.
    """
    plan = _get_plan(forest, fill_corners)
    # Stage 1: same-level copies + restrictions (read interiors only).
    if batched_copies:
        flat_dst, flat_src = _batched_copy_indices(forest, plan)
        flat = forest.arena.pool.reshape(-1)
        if kernels is not None:
            kernels.scatter_ghosts(flat, flat_dst, flat_src)
        else:
            flat[flat_dst] = flat[flat_src]
    else:
        for dst_view, src_view in plan.copies:
            dst_view[...] = src_view
    for block, transfers in plan.restrict_groups:
        _fill_restrictions(forest, block, transfers)
    if bc is not None:
        # Applying the BC after stage 1 gives stage-2 prolongations valid
        # slope borders next to physical boundaries.
        for block, face, region in plan.bc_faces:
            bc(block, face, region, forest)
    # Stage 2: prolongations (may read the sources' now-valid ghosts).
    for block, src, t in plan.prolongs:
        up = -t.delta
        fine = _prolong_region(src, t.src_box, up, forest.prolong_order)
        cover = t.src_box.refined(up).shift(_neg(t.shift))
        sub = t.dst_box.slices(cover.lo)
        block.view(t.dst_box)[...] = fine[(slice(None),) + sub]
    if bc is not None:
        # Re-apply so boundary slabs adjacent to prolonged ghosts are
        # consistent with the final data.
        for block, face, region in plan.bc_faces:
            bc(block, face, region, forest)
    return plan.n_transfers


def apply_physical_bc(forest: BlockForest, bc: BoundaryHandler) -> None:
    """Apply physical boundary conditions to all domain-boundary ghosts.

    Runs axis by axis; the slab for axis ``a`` is extended across the
    full ghost width of every *other* axis, so edge/corner ghosts outside
    the domain are filled consistently (the last axis wins at corners
    shared by two physical boundaries, the standard convention).
    """
    for axis in range(forest.ndim):
        other_axes = tuple(a for a in range(forest.ndim) if a != axis)
        for bid in forest.sorted_ids():
            block = forest.blocks[bid]
            for side in (0, 1):
                face = 2 * axis + side
                fn = block.face_neighbors.get(face)
                if fn is None or fn.kind != NeighborKind.BOUNDARY:
                    continue
                region = block.ghost_region(face, other_axes)
                bc(block, face, region, forest)
