"""Logical addressing of adaptive blocks.

A block is identified by its refinement ``level`` and its integer
``coords`` within that level: at level ``L`` a domain tiled by
``n_root`` root blocks per axis contains ``n_root * 2**L`` block slots
per axis.  All structural relations — parent, children, face neighbors,
ancestors — are O(1) integer arithmetic on these coordinates, which is
what lets the forest maintain the paper's *explicit neighbor pointers*
cheaply instead of traversing a tree.

The module also provides :class:`IndexBox`, the integer-box algebra used
by the ghost-cell exchange: every transfer between blocks (copy,
prolongation, restriction) is an intersection of integer index boxes in
a common refinement level, converted between levels by scaling with
powers of two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.util.geometry import child_offsets, face_axis, face_side
from repro.util.morton import sfc_key

__all__ = ["BlockID", "IndexBox"]


@dataclass(frozen=True, order=True)
class BlockID:
    """Identifier of a block: refinement level + logical coordinates.

    ``coords[axis]`` is the block's position within its level; the block
    covers cells ``[coords[axis] * m[axis], (coords[axis]+1) * m[axis])``
    in the level's global cell index space.
    """

    level: int
    coords: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError(f"level must be >= 0, got {self.level}")
        if not 1 <= len(self.coords) <= 3:
            raise ValueError(f"dimension must be 1..3, got {len(self.coords)}")
        if any(c < 0 for c in self.coords):
            raise ValueError(f"coords must be non-negative, got {self.coords}")

    @property
    def ndim(self) -> int:
        return len(self.coords)

    @property
    def parent(self) -> "BlockID":
        """The block one level coarser that contains this block."""
        if self.level == 0:
            raise ValueError("root blocks have no parent")
        return BlockID(self.level - 1, tuple(c >> 1 for c in self.coords))

    def ancestor(self, level: int) -> "BlockID":
        """The containing block at the given coarser (or equal) level."""
        if level > self.level:
            raise ValueError(f"ancestor level {level} > own level {self.level}")
        shift = self.level - level
        return BlockID(level, tuple(c >> shift for c in self.coords))

    @property
    def child_index(self) -> int:
        """Position of this block among its parent's 2^d children.

        Bit ``axis`` of the result is ``coords[axis] & 1`` (Morton
        sub-key order, matching :func:`repro.util.geometry.child_offsets`).
        """
        if self.level == 0:
            raise ValueError("root blocks have no child index")
        idx = 0
        for axis, c in enumerate(self.coords):
            idx |= (c & 1) << axis
        return idx

    def children(self) -> Tuple["BlockID", ...]:
        """The 2^d blocks one level finer that tile this block."""
        base = tuple(c << 1 for c in self.coords)
        return tuple(
            BlockID(self.level + 1, tuple(b + o for b, o in zip(base, off)))
            for off in child_offsets(self.ndim)
        )

    def siblings(self) -> Tuple["BlockID", ...]:
        """All 2^d children of this block's parent (including itself)."""
        return self.parent.children()

    def face_neighbor(self, face: int) -> "BlockID | None":
        """Same-level neighbor across ``face``, or None if coords go negative.

        The caller (the forest) is responsible for the upper domain bound
        and for periodic wrapping; this method only knows level-local
        integer arithmetic.
        """
        axis, side = face_axis(face), face_side(face)
        delta = 1 if side else -1
        c = self.coords[axis] + delta
        if c < 0:
            return None
        coords = self.coords[:axis] + (c,) + self.coords[axis + 1 :]
        return BlockID(self.level, coords)

    def neighbor_offset(self, offset: Sequence[int]) -> "BlockID | None":
        """Same-level neighbor displaced by an integer offset vector.

        Used for edge/corner (lower-dimensional) neighbor pointers in the
        generalized connectivity mode.  Returns None if any coordinate
        would go negative.
        """
        if len(offset) != self.ndim:
            raise ValueError("offset dimension mismatch")
        coords = tuple(c + o for c, o in zip(self.coords, offset))
        if any(c < 0 for c in coords):
            return None
        return BlockID(self.level, coords)

    def touches_parent_face(self, face: int) -> bool:
        """True if this block's ``face`` lies on its parent's ``face``."""
        axis, side = face_axis(face), face_side(face)
        return (self.coords[axis] & 1) == side

    def cell_box(self, m: Sequence[int]) -> "IndexBox":
        """Global cell-index box covered by this block at its own level."""
        lo = tuple(c * mi for c, mi in zip(self.coords, m))
        hi = tuple((c + 1) * mi for c, mi in zip(self.coords, m))
        return IndexBox(lo, hi)

    def morton_key(self, curve: str = "morton") -> int:
        """Deterministic global ordering key (level-major, SFC-minor)."""
        return sfc_key(self.coords, self.level, curve=curve)

    def __repr__(self) -> str:  # compact: L2(3,0,1)
        return f"L{self.level}{self.coords}"


@dataclass(frozen=True)
class IndexBox:
    """Half-open integer index box ``[lo, hi)`` in d dimensions.

    The workhorse of the ghost exchange: ghost regions, block interiors,
    and transfer regions are all IndexBoxes in some level's global cell
    index space; moving between levels is :meth:`coarsened` /
    :meth:`refined`.
    """

    lo: Tuple[int, ...]
    hi: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo/hi dimension mismatch")

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(max(0, b - a) for a, b in zip(self.lo, self.hi))

    @property
    def empty(self) -> bool:
        return any(b <= a for a, b in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def intersect(self, other: "IndexBox") -> "IndexBox":
        """Component-wise intersection (may be empty)."""
        return IndexBox(
            tuple(max(a, c) for a, c in zip(self.lo, other.lo)),
            tuple(min(b, d) for b, d in zip(self.hi, other.hi)),
        )

    def contains(self, other: "IndexBox") -> bool:
        """True if ``other`` lies entirely inside this box."""
        return all(
            a <= c and d <= b
            for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def shift(self, offset: Sequence[int]) -> "IndexBox":
        """Translate by an integer offset vector."""
        return IndexBox(
            tuple(a + o for a, o in zip(self.lo, offset)),
            tuple(b + o for b, o in zip(self.hi, offset)),
        )

    def grow(self, width: int | Sequence[int]) -> "IndexBox":
        """Expand by ``width`` cells on every side (per-axis if a sequence)."""
        if isinstance(width, int):
            width = (width,) * self.ndim
        return IndexBox(
            tuple(a - w for a, w in zip(self.lo, width)),
            tuple(b + w for b, w in zip(self.hi, width)),
        )

    def coarsened(self, shift: int) -> "IndexBox":
        """The smallest box at a level ``shift`` coarser covering this box.

        Low corners round down (floor division), high corners round up,
        so the coarse box always covers the fine one.
        """
        if shift < 0:
            raise ValueError("shift must be >= 0")
        f = 1 << shift
        return IndexBox(
            tuple(a >> shift for a in self.lo),
            tuple(-((-b) // f) for b in self.hi),
        )

    def refined(self, shift: int) -> "IndexBox":
        """The box at a level ``shift`` finer covering exactly this box."""
        if shift < 0:
            raise ValueError("shift must be >= 0")
        return IndexBox(
            tuple(a << shift for a in self.lo),
            tuple(b << shift for b in self.hi),
        )

    def slices(self, origin: Sequence[int]) -> Tuple[slice, ...]:
        """Numpy slices of this box within an array whose [0,...] element
        is at global index ``origin``."""
        return tuple(
            slice(a - o, b - o) for a, b, o in zip(self.lo, self.hi, origin)
        )

    def iter_cells(self) -> Iterator[Tuple[int, ...]]:
        """Iterate all integer cells in the box (row-major)."""
        if self.empty:
            return
        def rec(axis: int, prefix: Tuple[int, ...]) -> Iterator[Tuple[int, ...]]:
            if axis == self.ndim:
                yield prefix
                return
            for c in range(self.lo[axis], self.hi[axis]):
                yield from rec(axis + 1, prefix + (c,))
        yield from rec(0, ())
