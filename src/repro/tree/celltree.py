"""Cell-based tree decomposition — the paper's baseline data structure.

In a cell-based quadtree/octree *every node is a single cell*.  When a
cell is subdivided its children are created and the parent remains, so
the region has two representations (Figure 4 of the paper).  Only
parent/child links are stored; neighbor information must be recovered by
tree traversal (:mod:`repro.tree.traversal`), and the solver must gather
each cell's stencil through per-cell indirect addressing
(:mod:`repro.tree.tree_solver`).

This is deliberately the structure the paper argues *against*: the
benchmarks measure its per-cell cost (indirect addressing, no
vectorization), its pointer overhead, and its traversal hops, and
compare them with adaptive blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.util.geometry import Box, child_offsets, face_axis, face_side

__all__ = ["CellNode", "CellTree"]


@dataclass
class CellNode:
    """One cell of the tree: a node with parent/child pointers only.

    ``data`` holds the nvar state values of this cell (meaningful at
    leaves; interior nodes keep their last pre-refinement values, which
    is exactly the double-representation overhead of cell-based trees).
    """

    level: int
    coords: Tuple[int, ...]
    parent: Optional["CellNode"] = None
    children: Optional[List["CellNode"]] = None
    data: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def ndim(self) -> int:
        return len(self.coords)

    @property
    def child_index(self) -> int:
        idx = 0
        for axis, c in enumerate(self.coords):
            idx |= (c & 1) << axis
        return idx

    def __repr__(self) -> str:
        return f"CellNode(L{self.level}{self.coords}, leaf={self.is_leaf})"


class CellTree:
    """A d-dimensional cell-based tree over a rectangular domain.

    Parameters
    ----------
    domain:
        Physical bounding box.
    n_root:
        Root cells per axis (the forest of tree roots).
    nvar:
        State variables per cell.
    max_level:
        Maximum refinement depth.
    """

    def __init__(
        self,
        domain: Box,
        n_root: Sequence[int],
        nvar: int,
        *,
        max_level: int = 12,
    ) -> None:
        self.domain = domain
        self.ndim = domain.ndim
        self.n_root = tuple(int(n) for n in n_root)
        self.nvar = int(nvar)
        self.max_level = int(max_level)
        if len(self.n_root) != self.ndim:
            raise ValueError("n_root dimension mismatch")
        if any(n < 1 for n in self.n_root):
            raise ValueError("n_root must be >= 1 per axis")
        self.roots: Dict[Tuple[int, ...], CellNode] = {}
        self.n_nodes = 0
        for coords in np.ndindex(*self.n_root):
            node = CellNode(0, tuple(int(c) for c in coords))
            node.data = np.zeros(self.nvar)
            self.roots[node.coords] = node
            self.n_nodes += 1

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def refine(self, node: CellNode) -> List[CellNode]:
        """Subdivide a leaf cell into 2^d children (parent remains)."""
        if not node.is_leaf:
            raise ValueError(f"{node} is not a leaf")
        if node.level >= self.max_level:
            raise ValueError(f"{node} already at max level")
        base = tuple(c << 1 for c in node.coords)
        node.children = []
        for off in child_offsets(self.ndim):
            child = CellNode(
                node.level + 1,
                tuple(b + o for b, o in zip(base, off)),
                parent=node,
            )
            child.data = node.data.copy()  # injection prolongation
            node.children.append(child)
            self.n_nodes += 1
        return node.children

    def coarsen(self, node: CellNode) -> None:
        """Remove a node's children (all must be leaves); the parent's
        value becomes the mean of the children (restriction)."""
        if node.is_leaf:
            raise ValueError(f"{node} has no children")
        if any(not c.is_leaf for c in node.children):
            raise ValueError("cannot coarsen: a child is subdivided")
        node.data = np.mean([c.data for c in node.children], axis=0)
        self.n_nodes -= len(node.children)
        node.children = None

    def leaves(self) -> Iterator[CellNode]:
        """All leaf cells, in deterministic root/child order."""
        for coords in sorted(self.roots):
            stack = [self.roots[coords]]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    yield node
                else:
                    stack.extend(reversed(node.children))

    @property
    def n_leaves(self) -> int:
        return sum(1 for _ in self.leaves())

    def depth(self) -> int:
        """Maximum leaf level."""
        return max((leaf.level for leaf in self.leaves()), default=0)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    def cell_box(self, node: CellNode) -> Box:
        widths = self.domain.widths
        lo, hi = [], []
        for axis in range(self.ndim):
            n_level = self.n_root[axis] << node.level
            w = widths[axis] / n_level
            lo.append(self.domain.lo[axis] + node.coords[axis] * w)
            hi.append(self.domain.lo[axis] + (node.coords[axis] + 1) * w)
        return Box(tuple(lo), tuple(hi))

    def cell_center(self, node: CellNode) -> Tuple[float, ...]:
        return self.cell_box(node).center

    def cell_widths(self, node: CellNode) -> Tuple[float, ...]:
        return tuple(
            w / (n << node.level) for w, n in zip(self.domain.widths, self.n_root)
        )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def refine_uniformly(self, times: int = 1) -> None:
        """Subdivide every leaf ``times`` times (uniform grid of depth
        ``times`` with all the tree overhead — the baseline workload)."""
        for _ in range(times):
            for leaf in list(self.leaves()):
                self.refine(leaf)

    def refine_where(
        self, predicate: Callable[[CellNode], bool], max_rounds: int = 64
    ) -> None:
        """Refine leaves satisfying ``predicate`` until none do."""
        for _ in range(max_rounds):
            targets = [leaf for leaf in self.leaves() if predicate(leaf)]
            if not targets:
                return
            for leaf in targets:
                if leaf.level < self.max_level:
                    self.refine(leaf)

    def set_state(self, fn: Callable[[Tuple[float, ...]], np.ndarray]) -> None:
        """Initialize every leaf from a function of its cell center."""
        for leaf in self.leaves():
            leaf.data = np.asarray(fn(self.cell_center(leaf)), dtype=float)

    def storage_pointers(self) -> int:
        """Total parent/child pointers stored (for the overhead table)."""
        count = 0
        for coords in sorted(self.roots):
            stack = [self.roots[coords]]
            while stack:
                node = stack.pop()
                count += 1  # parent pointer
                if not node.is_leaf:
                    count += len(node.children)
                    stack.extend(node.children)
        return count
