"""Neighbor finding by tree traversal — the baseline's connectivity cost.

Cell-based trees store only parent/child links, so locating the neighbor
of a cell requires walking *up* the tree to the nearest ancestor whose
subtree contains the neighbor, then *down* the mirrored path (Samet's
classic algorithm, the paper's reference [5]).  Every node touched on
the way is counted: on a distributed machine each hop can be a remote
access, which is precisely the communication overhead the paper's
explicit per-face block pointers eliminate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.tree.celltree import CellNode, CellTree
from repro.util.geometry import face_axis, face_side

__all__ = ["NeighborResult", "find_neighbor", "neighbor_leaves", "traversal_statistics"]


@dataclass
class NeighborResult:
    """Outcome of one traversal-based neighbor query.

    ``node`` is the neighbor at the same level or the deepest existing
    ancestor of it (None outside the domain); ``hops`` counts every tree
    link followed (up + down) — the traversal cost.
    """

    node: Optional[CellNode]
    hops: int


def find_neighbor(tree: CellTree, node: CellNode, face: int) -> NeighborResult:
    """Locate the leaf-or-ancestor cell across ``face`` of ``node``.

    Classic up-then-down traversal using only parent/child links.  The
    result is the cell at ``node``'s level if it exists, else the deepest
    existing ancestor covering that position (a coarser leaf).  Returns
    ``node=None`` for faces on the domain boundary.
    """
    axis, side = face_axis(face), face_side(face)
    hops = 0

    # Walk up until the neighbor lies inside the current ancestor's
    # subtree — i.e. until moving one cell along `axis` does not leave
    # the ancestor.  Record the path of child indices taken.
    path: List[int] = []
    cur = node
    while True:
        if cur.level == 0:
            # Neighboring root cell (or outside the domain).
            c = cur.coords[axis] + (1 if side else -1)
            if not 0 <= c < tree.n_root[axis]:
                return NeighborResult(None, hops)
            coords = cur.coords[:axis] + (c,) + cur.coords[axis + 1 :]
            target: Optional[CellNode] = tree.roots[coords]
            hops += 1
            break
        bit = (cur.coords[axis] & 1)
        path.append(cur.child_index)
        cur = cur.parent
        hops += 1
        if bit != side:
            # The neighbor is a sibling subtree of `cur`: flip the axis
            # bit of the last child index and descend from here.
            target = cur
            break

    # Walk down the mirrored path.
    for child_idx in reversed(path):
        if target.is_leaf:
            # The neighbor region is represented at a coarser level.
            return NeighborResult(target, hops)
        mirrored = child_idx ^ (1 << axis)
        target = target.children[mirrored]
        hops += 1
    return NeighborResult(target, hops)


def neighbor_leaves(
    tree: CellTree, node: CellNode, face: int
) -> Tuple[List[CellNode], int]:
    """All *leaf* cells adjacent to ``node`` across ``face``.

    If the traversal lands on an interior node, its face-adjacent
    descendants are collected (more hops).  Returns ``(leaves, hops)``.
    """
    res = find_neighbor(tree, node, face)
    if res.node is None:
        return [], res.hops
    hops = res.hops
    if res.node.is_leaf:
        return [res.node], hops
    axis, side = face_axis(face), face_side(face)
    opposite = 1 - side
    out: List[CellNode] = []
    stack = [res.node]
    while stack:
        cur = stack.pop()
        for child in cur.children:
            if (child.coords[axis] & 1) != opposite:
                continue
            hops += 1
            if child.is_leaf:
                out.append(child)
            else:
                stack.append(child)
    return out, hops


def traversal_statistics(tree: CellTree) -> dict:
    """Hop-count statistics for a full neighbor sweep over all leaves —
    the per-step connectivity cost of the tree baseline."""
    total_hops = 0
    max_hops = 0
    queries = 0
    for leaf in tree.leaves():
        for face in range(2 * tree.ndim):
            _, hops = neighbor_leaves(tree, leaf, face)
            total_hops += hops
            max_hops = max(max_hops, hops)
            queries += 1
    return {
        "queries": queries,
        "total_hops": total_hops,
        "mean_hops": total_hops / queries if queries else 0.0,
        "max_hops": max_hops,
    }
