"""Cell-based tree baseline (quadtree/octree with one cell per node)."""

from repro.tree.celltree import CellNode, CellTree
from repro.tree.traversal import (
    NeighborResult,
    find_neighbor,
    neighbor_leaves,
    traversal_statistics,
)
from repro.tree.tree_solver import tree_stable_dt, tree_step, tree_total

__all__ = [
    "CellNode",
    "CellTree",
    "NeighborResult",
    "find_neighbor",
    "neighbor_leaves",
    "traversal_statistics",
    "tree_stable_dt",
    "tree_step",
    "tree_total",
]
