"""Finite-volume solver over cell-tree leaves — the slow baseline.

The same physics as :mod:`repro.solvers` (flux functions, Rusanov
dissipation), but organized the way a cell-based tree forces it to be:

* one cell per node — state gathered through per-cell indirect
  addressing (Python object attribute access, the analogue of the
  pointer chasing that throttled cell-based trees on the T3D);
* neighbors located by tree traversal for every face of every cell,
  every step;
* no whole-array operations — every flux is computed on a 1-cell array.

The per-cell time of :func:`tree_step` versus the per-cell time of the
block scheme is the paper's "significantly faster than a single
processor solving the same problem using a cell based tree" claim,
reproduced by ``benchmarks/test_table_block_vs_tree.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.solvers.scheme import FVScheme
from repro.tree.celltree import CellNode, CellTree
from repro.tree.traversal import neighbor_leaves
from repro.util.geometry import face_axis, face_side

__all__ = ["tree_step", "tree_stable_dt", "tree_total"]


def _face_value(
    tree: CellTree, leaf: CellNode, face: int
) -> Optional[np.ndarray]:
    """State on the other side of ``face``: the neighbor leaf's value,
    restricted (averaged) when several finer leaves share the face, or
    the coarser leaf's value (injection) when the neighbor is coarser.
    Returns None at domain boundaries (caller applies outflow)."""
    leaves, _ = neighbor_leaves(tree, leaf, face)
    if not leaves:
        return None
    if len(leaves) == 1:
        return leaves[0].data
    return np.mean([lf.data for lf in leaves], axis=0)


def tree_step(tree: CellTree, scheme: FVScheme, dt: float) -> None:
    """One first-order finite-volume step over every leaf of the tree.

    Boundary faces use outflow (zero-gradient).  The update is gathered
    cell by cell — deliberately so; this function *is* the measurement
    of single-cell indirect addressing.
    """
    updates: List[Tuple[CellNode, np.ndarray]] = []
    for leaf in tree.leaves():
        w_c = scheme.cons_to_prim(leaf.data[:, np.newaxis])
        dx = tree.cell_widths(leaf)
        du = np.zeros(tree.nvar)
        for axis in range(tree.ndim):
            for side in (0, 1):
                face = 2 * axis + side
                other = _face_value(tree, leaf, face)
                if other is None:
                    other = leaf.data
                w_o = scheme.cons_to_prim(np.asarray(other)[:, np.newaxis])
                if side == 1:
                    wl, wr = w_c, w_o
                else:
                    wl, wr = w_o, w_c
                f = scheme.riemann(scheme, wl, wr, axis)[:, 0]
                sign = 1.0 if side == 1 else -1.0
                du -= sign * f / dx[axis]
        updates.append((leaf, du))
    for leaf, du in updates:
        leaf.data = leaf.data + dt * du


def tree_stable_dt(tree: CellTree, scheme: FVScheme) -> float:
    """CFL-stable step over all leaves (cell-by-cell, like everything
    else in the tree baseline)."""
    dt = np.inf
    for leaf in tree.leaves():
        dx = tree.cell_widths(leaf)
        w = scheme.cons_to_prim(leaf.data[:, np.newaxis])
        s = 0.0
        for a in range(tree.ndim):
            s = max(s, float(scheme.max_char_speed(w, a)[0]))
        if s > 0:
            dt = min(dt, scheme.cfl / sum(s / d for d in dx))
    return dt


def tree_total(tree: CellTree, var: int = 0) -> float:
    """Volume-weighted total of one conserved variable over all leaves
    (the conservation diagnostic)."""
    total = 0.0
    for leaf in tree.leaves():
        total += leaf.data[var] * tree.cell_box(leaf).volume
    return total
