"""Deterministic fault injection for the emulated distributed machine.

A :class:`FaultPlan` scripts failures against an emulated run: killing
ranks before a chosen step and dropping or corrupting individual wire
messages of a chosen exchange.  Plans are deterministic — either built
explicitly from :class:`RankKill` / :class:`MessageFault` records or
generated from a seed via :meth:`FaultPlan.random` — so every failure
scenario is exactly reproducible.

Faults are *one-shot*: once a fault has fired it is consumed and will
not fire again when the recovery machinery replays the same steps from
a checkpoint (the emulated analogue of a transient hardware failure).

Message faults are classified **transient** or **fatal**.  A transient
fault models a recoverable wire hiccup: when the machine carries a
:class:`RetryPolicy`, the sender retransmits with capped exponential
backoff instead of surfacing a failure, and only retry exhaustion
escalates.  A fatal fault (the default, matching the original fault
model) is detected immediately.

The machine raises the exceptions defined here at the moment it
*detects* the failure — lost blocks after a rank death, a missing or
checksum-mismatched payload — and the recovery driver
(:func:`repro.resilience.recovery.run_with_recovery`) catches them and
recovers, locally from a partner copy or globally from a checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.integrity import crc_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.block_id import BlockID

__all__ = [
    "FaultDetected",
    "RankFailure",
    "MessageFailure",
    "RankKill",
    "MessageFault",
    "BitFlip",
    "FaultPlan",
    "RetryPolicy",
    "apply_bitflip",
]


class FaultDetected(RuntimeError):
    """Base class: the emulated machine noticed an injected failure."""


class RankFailure(FaultDetected):
    """A rank died and its blocks are lost.

    ``kinds`` optionally carries the supervisor's failure classification
    per rank (see :class:`repro.parallel.supervisor.FailureKind`) when
    the failure came from a real process; the emulator leaves it empty.
    """

    def __init__(
        self,
        step: int,
        ranks: Tuple[int, ...],
        lost_blocks: Tuple,
        *,
        kinds: Tuple[str, ...] = (),
    ) -> None:
        self.step = step
        self.ranks = tuple(ranks)
        self.lost_blocks = tuple(lost_blocks)
        self.kinds = tuple(kinds)
        detail = (
            f" ({', '.join(self.kinds)})" if self.kinds else ""
        )
        super().__init__(
            f"rank(s) {list(self.ranks)} failed before step {step}"
            f"{detail}; {len(self.lost_blocks)} block(s) lost"
        )


class MessageFailure(FaultDetected):
    """A wire message was dropped or failed its content checksum."""

    def __init__(self, step: int, index: int, mode: str, dst_id: "BlockID",
                 src_id: "BlockID", *, retries: int = 0) -> None:
        self.step = step
        self.index = index
        self.mode = mode
        self.dst_id = dst_id
        self.src_id = src_id
        self.retries = retries
        what = "lost in transit" if mode == "drop" else "failed checksum"
        suffix = f" after {retries} retransmission(s)" if retries else ""
        super().__init__(
            f"message {index} of step {step} ({src_id} -> {dst_id}) "
            f"{what}{suffix}"
        )


_MESSAGE_MODES = ("drop", "corrupt")

_FLIP_TARGETS = ("interior", "ghost", "mirror", "staging")


def apply_bitflip(arr: np.ndarray, byte: int, bit: int) -> None:
    """XOR one bit of an array's contents, in place.

    Works on non-contiguous views (a block's ``interior``, a shared
    mirror row): the byte offset is interpreted against the array's
    logical C-order byte stream, mapped to the owning element, and the
    flip is written back through the view.  ``byte`` and ``bit`` wrap
    around the array/element size so any scripted offset is valid.
    """
    if arr.size == 0:  # pragma: no cover - nothing to flip
        return
    itemsize = arr.dtype.itemsize
    byte = int(byte) % (arr.size * itemsize)
    idx = np.unravel_index(byte // itemsize, arr.shape)
    raw = bytearray(arr[idx].tobytes())
    raw[byte % itemsize] ^= 1 << (int(bit) % 8)
    arr[idx] = np.frombuffer(bytes(raw), dtype=arr.dtype)[0]


@dataclass(frozen=True)
class RankKill:
    """Kill ``rank`` immediately before the machine executes ``step``."""

    step: int
    rank: int


@dataclass(frozen=True)
class MessageFault:
    """Tamper with the ``index``-th wire message of ``step``.

    ``mode`` is ``"drop"`` (the message never arrives) or ``"corrupt"``
    (the payload is bit-flipped, caught by the receiver's checksum).
    Message indices count remote payloads from the start of the step's
    :meth:`~repro.parallel.emulator.EmulatedMachine.advance`, in the
    machine's deterministic exchange order.

    ``transient`` classifies the fault: a transient fault is retried by
    the sender (when the machine has a :class:`RetryPolicy`) and each
    retry attempt consumes one more matching fault record, so a plan
    with ``k`` transient faults on the same ``(step, index)`` makes the
    message fail ``k`` times before a retransmission finally succeeds.
    A fatal fault (the default) is detected and raised immediately.
    """

    step: int
    index: int
    mode: str = "corrupt"
    transient: bool = False

    def __post_init__(self) -> None:
        if self.mode not in _MESSAGE_MODES:
            raise ValueError(
                f"mode must be one of {_MESSAGE_MODES}, got {self.mode!r}"
            )


@dataclass(frozen=True)
class BitFlip:
    """Flip one bit of live state immediately before executing ``step``.

    ``target`` selects the memory region:

    * ``"interior"`` — a computational cell of a live block,
    * ``"ghost"`` — the ghost halo of a live block (padded row minus
      the interior),
    * ``"mirror"`` — the partner store's mirror copy of a block (on the
      process backend this is a row of the *holder* rank's shared
      segment),
    * ``"staging"`` — an in-flight exchange staging buffer (the payload
      between gather and write), hit mid-exchange rather than at the
      step boundary.

    ``block`` indexes the machine's deterministic block order (for
    ``staging``, the step's wire-message order); ``byte``/``bit``
    select the flipped bit and wrap around the region size, so seeded
    random plans never miss.
    """

    step: int
    target: str = "interior"
    block: int = 0
    byte: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        if self.target not in _FLIP_TARGETS:
            raise ValueError(
                f"target must be one of {_FLIP_TARGETS}, got {self.target!r}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient message faults.

    The backoff before retransmission ``attempt`` (0-based) is::

        min(backoff_base * backoff_factor**attempt, backoff_cap)
          * (1 + jitter * h)

    where ``h`` in [0, 1) is a deterministic hash of
    ``(seed, step, index, attempt)`` — seeded jitter that decorrelates
    retry storms yet replays identically after a rollback.  Backoff
    time and retransmitted bytes are charged to the machine's
    :class:`~repro.parallel.emulator.ExchangeStats` so the cost of
    transient-fault supervision is measurable.
    """

    max_retries: int = 3
    backoff_base: float = 1e-4  #: simulated seconds before the first resend
    backoff_factor: float = 2.0
    backoff_cap: float = 0.1
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be > 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def backoff(self, attempt: int, *, step: int = 0, index: int = 0) -> float:
        """Deterministic backoff (simulated seconds) for one retry."""
        raw = min(
            self.backoff_base * self.backoff_factor ** attempt,
            self.backoff_cap,
        )
        h = crc_text(f"{self.seed}:{step}:{index}:{attempt}")
        return raw * (1.0 + self.jitter * (h / 2 ** 32))


class FaultPlan:
    """A scripted, deterministic set of faults for one emulated run."""

    def __init__(
        self,
        kills: Iterable[RankKill] = (),
        message_faults: Iterable[MessageFault] = (),
        bitflips: Iterable[BitFlip] = (),
    ) -> None:
        self.kills: Tuple[RankKill, ...] = tuple(kills)
        self.message_faults: Tuple[MessageFault, ...] = tuple(message_faults)
        self.bitflips: Tuple[BitFlip, ...] = tuple(bitflips)
        self._fired: Set = set()

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        n_steps: int,
        n_ranks: int,
        n_kills: int = 1,
        n_message_faults: int = 0,
        transient: bool = False,
    ) -> "FaultPlan":
        """Seeded random plan: ``n_kills`` distinct rank deaths (always
        leaving at least one survivor) and ``n_message_faults`` message
        faults spread over steps ``1..n_steps-1``; ``transient`` marks
        the message faults retryable."""
        if n_kills >= n_ranks:
            raise ValueError("must leave at least one surviving rank")
        rng = np.random.default_rng(seed)
        hi = max(n_steps, 2)
        doomed = rng.choice(n_ranks, size=n_kills, replace=False)
        kills = [
            RankKill(int(rng.integers(1, hi)), int(r)) for r in doomed
        ]
        faults = [
            MessageFault(
                int(rng.integers(1, hi)),
                int(rng.integers(0, 8)),
                _MESSAGE_MODES[int(rng.integers(0, 2))],
                transient,
            )
            for _ in range(n_message_faults)
        ]
        return cls(kills, faults)

    # ------------------------------------------------------------------

    def kills_at(self, step: int) -> List[int]:
        """Ranks to kill before executing ``step`` (consumed, one-shot)."""
        out: List[int] = []
        for i, k in enumerate(self.kills):
            if k.step == step and ("kill", i) not in self._fired:
                self._fired.add(("kill", i))
                out.append(k.rank)
        return out

    def take_message_fault(self, step: int, index: int) -> Optional[MessageFault]:
        """The next unfired fault record for this step's ``index``-th
        wire message, if any (consumed, one-shot).  Records are
        consumed by position, so a plan listing the same ``(step,
        index)`` fault ``k`` times makes that message fail ``k``
        consecutive delivery attempts — the way to script retry
        exhaustion against a :class:`RetryPolicy`."""
        for i, mf in enumerate(self.message_faults):
            if (
                mf.step == step
                and mf.index == index
                and ("msg", i) not in self._fired
            ):
                self._fired.add(("msg", i))
                return mf
        return None

    def message_fault(self, step: int, index: int) -> Optional[str]:
        """Fault mode for this step's ``index``-th wire message, if any
        (consumed, one-shot)."""
        mf = self.take_message_fault(step, index)
        return mf.mode if mf is not None else None

    def flips_at(self, step: int) -> List[BitFlip]:
        """Bitflips to apply before executing ``step`` (consumed,
        one-shot — a flip does not re-fire when recovery replays the
        step, matching the transient-SEU fault model)."""
        out: List[BitFlip] = []
        for i, f in enumerate(self.bitflips):
            if f.step == step and ("flip", i) not in self._fired:
                self._fired.add(("flip", i))
                out.append(f)
        return out

    @property
    def pending(self) -> int:
        """Faults that have not fired yet."""
        return (
            len(self.kills)
            + len(self.message_faults)
            + len(self.bitflips)
            - len(self._fired)
        )
