"""Deterministic fault injection for the emulated distributed machine.

A :class:`FaultPlan` scripts failures against an emulated run: killing
ranks before a chosen step and dropping or corrupting individual wire
messages of a chosen exchange.  Plans are deterministic — either built
explicitly from :class:`RankKill` / :class:`MessageFault` records or
generated from a seed via :meth:`FaultPlan.random` — so every failure
scenario is exactly reproducible.

Faults are *one-shot*: once a fault has fired it is consumed and will
not fire again when the recovery machinery replays the same steps from
a checkpoint (the emulated analogue of a transient hardware failure).

The machine raises the exceptions defined here at the moment it
*detects* the failure — lost blocks after a rank death, a missing or
checksum-mismatched payload — and the recovery driver
(:func:`repro.resilience.recovery.run_with_recovery`) catches them and
rolls the machine back to the last checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

__all__ = [
    "FaultDetected",
    "RankFailure",
    "MessageFailure",
    "RankKill",
    "MessageFault",
    "FaultPlan",
]


class FaultDetected(RuntimeError):
    """Base class: the emulated machine noticed an injected failure."""


class RankFailure(FaultDetected):
    """A rank died and its blocks are lost."""

    def __init__(self, step: int, ranks: Tuple[int, ...], lost_blocks: Tuple) -> None:
        self.step = step
        self.ranks = tuple(ranks)
        self.lost_blocks = tuple(lost_blocks)
        super().__init__(
            f"rank(s) {list(self.ranks)} failed before step {step}; "
            f"{len(self.lost_blocks)} block(s) lost"
        )


class MessageFailure(FaultDetected):
    """A wire message was dropped or failed its content checksum."""

    def __init__(self, step: int, index: int, mode: str, dst_id, src_id) -> None:
        self.step = step
        self.index = index
        self.mode = mode
        self.dst_id = dst_id
        self.src_id = src_id
        what = "lost in transit" if mode == "drop" else "failed checksum"
        super().__init__(
            f"message {index} of step {step} ({src_id} -> {dst_id}) {what}"
        )


_MESSAGE_MODES = ("drop", "corrupt")


@dataclass(frozen=True)
class RankKill:
    """Kill ``rank`` immediately before the machine executes ``step``."""

    step: int
    rank: int


@dataclass(frozen=True)
class MessageFault:
    """Tamper with the ``index``-th wire message of ``step``.

    ``mode`` is ``"drop"`` (the message never arrives) or ``"corrupt"``
    (the payload is bit-flipped, caught by the receiver's checksum).
    Message indices count remote payloads from the start of the step's
    :meth:`~repro.parallel.emulator.EmulatedMachine.advance`, in the
    machine's deterministic exchange order.
    """

    step: int
    index: int
    mode: str = "corrupt"

    def __post_init__(self) -> None:
        if self.mode not in _MESSAGE_MODES:
            raise ValueError(
                f"mode must be one of {_MESSAGE_MODES}, got {self.mode!r}"
            )


class FaultPlan:
    """A scripted, deterministic set of faults for one emulated run."""

    def __init__(
        self,
        kills: Iterable[RankKill] = (),
        message_faults: Iterable[MessageFault] = (),
    ) -> None:
        self.kills: Tuple[RankKill, ...] = tuple(kills)
        self.message_faults: Tuple[MessageFault, ...] = tuple(message_faults)
        self._fired: Set = set()

    @classmethod
    def random(
        cls,
        *,
        seed: int,
        n_steps: int,
        n_ranks: int,
        n_kills: int = 1,
        n_message_faults: int = 0,
    ) -> "FaultPlan":
        """Seeded random plan: ``n_kills`` distinct rank deaths (always
        leaving at least one survivor) and ``n_message_faults`` message
        faults spread over steps ``1..n_steps-1``."""
        if n_kills >= n_ranks:
            raise ValueError("must leave at least one surviving rank")
        rng = np.random.default_rng(seed)
        hi = max(n_steps, 2)
        doomed = rng.choice(n_ranks, size=n_kills, replace=False)
        kills = [
            RankKill(int(rng.integers(1, hi)), int(r)) for r in doomed
        ]
        faults = [
            MessageFault(
                int(rng.integers(1, hi)),
                int(rng.integers(0, 8)),
                _MESSAGE_MODES[int(rng.integers(0, 2))],
            )
            for _ in range(n_message_faults)
        ]
        return cls(kills, faults)

    # ------------------------------------------------------------------

    def kills_at(self, step: int) -> List[int]:
        """Ranks to kill before executing ``step`` (consumed, one-shot)."""
        out: List[int] = []
        for k in self.kills:
            if k.step == step and k not in self._fired:
                self._fired.add(k)
                out.append(k.rank)
        return out

    def message_fault(self, step: int, index: int) -> Optional[str]:
        """Fault mode for this step's ``index``-th wire message, if any
        (consumed, one-shot)."""
        for mf in self.message_faults:
            if mf.step == step and mf.index == index and mf not in self._fired:
                self._fired.add(mf)
                return mf.mode
        return None

    @property
    def pending(self) -> int:
        """Faults that have not fired yet."""
        return len(self.kills) + len(self.message_faults) - len(self._fired)
