"""In-memory partner-block redundancy: the localized-recovery tier.

Global checkpoint rollback pays the worst case for every failure — all
ranks rewind, all blocks reload from disk.  Extreme-scale
block-structured AMR codes (Schornbaum & Rüde) instead keep a redundant
*in-memory* copy of each rank's blocks on a partner rank, so a single
rank loss only reconstructs the lost blocks from the partner copy, with
no disk I/O and no global rewind.

:class:`PartnerStore` implements that tier for the emulated machine:

* **Pairing** — a buddy ring over the SFC cut: each alive rank's blocks
  are mirrored on its successor along the curve (with two ranks the
  scheme degenerates to a mutual pair).  SFC adjacency keeps the
  snapshot traffic between curve-neighboring ranks.
* **Two snapshot roles** — every refresh leaves each rank with a
  *local* snapshot of its own blocks (a rank-private memcpy, free on
  the wire) and mirrors the same data as a *remote* copy in the buddy's
  memory.  The local snapshot rewinds a **survivor** to the last
  consistency point; the remote copy reconstructs a **dead** rank's
  blocks — and is usable only while the buddy holding it is alive.
* **Incremental refresh** — :meth:`refresh` copies only blocks whose
  interior changed since the last snapshot, detected by a cheap CRC32
  content tag, and charges the mirrored payloads to the machine's
  :class:`~repro.parallel.emulator.ExchangeStats` as partner traffic so
  the redundancy overhead is measurable.
* **Restore** — :meth:`restore_lost` reconstructs dead ranks' blocks
  onto survivors (an SFC re-cut of just the lost interval);
  :meth:`rewind_alive` rolls surviving ranks back to the snapshot when
  a mid-window failure requires replay.  Both are pure in-memory data
  movement.

A double fault — a rank dies together with (or after) the partner
holding its remote copy — makes :meth:`can_restore` report ``False``,
and the recovery driver escalates to the global checkpoint rollback.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.block_id import BlockID
from repro.core.integrity import content_crc

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.block import Block
    from repro.parallel.emulator import EmulatedMachine

__all__ = ["PartnerStore"]


def _tag(interior: np.ndarray) -> int:
    """Cheap content tag used to skip unchanged blocks on refresh.

    The tag doubles as the mirror's integrity CRC: a stored copy whose
    recomputed :func:`~repro.core.integrity.content_crc` no longer
    matches it has been corrupted in the holder's memory and must never
    be used as a repair source.
    """
    return content_crc(interior)


class PartnerStore:
    """Pairwise in-memory redundancy over an emulated machine's ranks.

    The store tracks, per alive rank, a snapshot of every block interior
    it owned at the last :meth:`refresh`, conceptually held in the
    partner rank's memory.  Snapshots are globally consistent — every
    rank is refreshed at the same step — so the union of all copies is a
    distributed in-memory checkpoint at :attr:`snapshot_step`.
    """

    def __init__(self, machine: "EmulatedMachine") -> None:
        self.machine = machine
        self._pairing: Dict[int, int] = {}
        self._copies: Dict[int, Dict[BlockID, np.ndarray]] = {}
        self._tags: Dict[int, Dict[BlockID, int]] = {}
        self.snapshot_step: Optional[int] = None
        self.snapshot_time: float = 0.0
        self._rebuild()

    # ------------------------------------------------------------------
    # pairing
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        """New buddy ring over the currently alive ranks; copies reset."""
        alive = self.machine.alive_ranks
        self._pairing = {}
        if len(alive) >= 2:
            for i, rank in enumerate(alive):
                self._pairing[rank] = alive[(i + 1) % len(alive)]
        self._copies = {r: {} for r in alive}
        self._tags = {r: {} for r in alive}
        self.snapshot_step = None
        self.snapshot_time = float(self.machine.time)

    @property
    def pairing(self) -> Dict[int, int]:
        """Owner rank -> partner rank holding its copy (read-only view)."""
        return dict(self._pairing)

    def holder_of(self, rank: int) -> Optional[int]:
        """The rank holding ``rank``'s redundant copy (None if unpaired)."""
        return self._pairing.get(rank)

    # ------------------------------------------------------------------
    # refresh
    # ------------------------------------------------------------------

    def refresh(self) -> int:
        """Snapshot every alive rank's blocks onto its partner.

        Incremental: only blocks whose content tag changed since the
        previous refresh are copied (and charged as partner traffic).
        The pairing is rebuilt first when rank membership changed — a
        recovery or an uneventful death of an empty rank both invalidate
        the old ring.  Returns the number of blocks copied.
        """
        machine = self.machine
        alive = machine.alive_ranks
        if set(self._copies) != set(alive):
            self._rebuild()
        copied = 0
        for owner in alive:
            holder = self._pairing.get(owner)
            copies = self._copies[owner]
            tags = self._tags[owner]
            owned = machine.rank_blocks[owner]
            for bid in [b for b in copies if b not in owned]:
                del copies[bid]
                del tags[bid]
            for bid, block in owned.items():
                tag = _tag(block.interior)
                if tags.get(bid) == tag:
                    continue
                copies[bid] = self._store_copy(owner, holder, bid, block)
                tags[bid] = tag
                copied += 1
                if holder is not None:
                    machine.stats.add_partner(block.interior.size)
        self.snapshot_step = machine.step_index
        self.snapshot_time = float(machine.time)
        return copied

    def _store_copy(
        self, owner: int, holder: Optional[int], bid: BlockID, block: "Block"
    ) -> np.ndarray:
        """Materialize one block's snapshot copy; subclass hook.

        The base store keeps a private in-process copy (the emulator's
        model of partner memory); the real-process backend's
        :class:`~repro.resilience.procpartner.SharedPartnerRing`
        overrides this to write the copy into the *holder's*
        shared-memory mirror region, so the copy genuinely lives — and
        dies — with the holding rank's process.
        """
        return block.interior.copy()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def is_current(self) -> bool:
        """True when the snapshot matches the machine's present step."""
        return self.snapshot_step == self.machine.step_index

    def _has_local(self, rank: int) -> bool:
        """``rank`` holds its own local snapshot (survivor rewind)."""
        return self.snapshot_step is not None and rank in self._copies

    def has_copy(self, rank: int) -> bool:
        """A usable *remote* copy of ``rank``'s blocks exists: a
        snapshot was taken, and the partner holding it is still alive.
        This is the condition for recovering a **dead** rank's data —
        survivors rewind from their own local snapshot instead."""
        holder = self._pairing.get(rank)
        return (
            self._has_local(rank)
            and holder is not None
            and self.machine.alive[holder]
        )

    def can_restore(self, dead_ranks: Iterable[int]) -> bool:
        """Whether localized recovery from these deaths is possible.

        Requires a usable remote copy of every dead rank *covering
        exactly the blocks it owned* (the assignment cannot have
        drifted since the snapshot — it only changes at recoveries,
        which rebuild the store), and — when the snapshot is older than
        the present step, so survivors must rewind too — a local
        snapshot on every survivor.
        """
        machine = self.machine
        dead = list(dead_ranks)
        for rank in dead:
            if not self.has_copy(rank):
                return False
            owned = {
                bid for bid, r in machine.assignment.items() if r == rank
            }
            if set(self._copies[rank]) != owned:
                return False
        if not self.is_current:
            for rank in machine.alive_ranks:
                if not self._has_local(rank):
                    return False
        return True

    def can_rewind(self) -> bool:
        """Whether every alive rank can roll back to the snapshot (each
        from its own local snapshot)."""
        alive = self.machine.alive_ranks
        return (
            self.snapshot_step is not None
            and len(alive) >= 2
            and all(self._has_local(r) for r in alive)
        )

    def invalidate(self, rank: int) -> None:
        """Drop the stored copy of ``rank``'s blocks (models the holder
        losing its redundancy buffer; also a test hook)."""
        self._copies.pop(rank, None)
        self._tags.pop(rank, None)

    # ------------------------------------------------------------------
    # mirror integrity (SDC defense)
    # ------------------------------------------------------------------

    def mirror_keys(self) -> List[Tuple[int, BlockID]]:
        """Every stored mirror as ``(owner, bid)``, in deterministic
        order (rank, then the owner's SFC insertion order) — the index
        space scripted ``mirror`` bitflips select from."""
        return [
            (owner, bid)
            for owner in sorted(self._copies)
            for bid in self._copies[owner]
        ]

    def copy_view(self, owner: int, bid: BlockID) -> Optional[np.ndarray]:
        """The stored mirror of one block, or None (test/injection hook:
        on the process backend this is a live shared-memory view, so
        writing to it corrupts the holder rank's real mirror row)."""
        return self._copies.get(owner, {}).get(bid)

    def verify_copies(self) -> Iterator[Tuple[int, BlockID, int, int]]:
        """Recompute every stored mirror's CRC against its refresh tag.

        Yields ``(owner, bid, expected_crc, actual_crc)`` for each copy;
        the scrubber turns ``expected != actual`` into a ``mirror``
        corruption entry.  Deterministic order (rank, then the owner's
        insertion order, which follows the SFC cut).
        """
        for owner in sorted(self._copies):
            tags = self._tags.get(owner, {})
            for bid, copy in self._copies[owner].items():
                expected = tags.get(bid)
                if expected is None:  # pragma: no cover - defensive
                    continue
                yield owner, bid, expected, _tag(copy)

    def copy_is_valid(self, owner: int, bid: BlockID) -> bool:
        """Whether a mirror of ``owner``'s block exists, its holder is
        alive, and its contents still match the CRC taken at refresh —
        the gate a repair source must pass before it is trusted."""
        if not self.has_copy(owner):
            return False
        copy = self._copies[owner].get(bid)
        if copy is None:
            return False
        return _tag(copy) == self._tags[owner].get(bid)

    def repair_block(self, owner: int, bid: BlockID) -> int:
        """Overwrite a corrupted live interior from its verified mirror.

        The caller must have checked :meth:`copy_is_valid` first.  The
        restored payload is a real wire message from the holder to the
        owner and is charged to partner traffic exactly once.  Returns
        the bytes moved.
        """
        copy = self._copies[owner][bid]
        block = self.machine.rank_blocks[owner][bid]
        block.interior[...] = copy
        holder = self._pairing.get(owner)
        if holder is not None and holder != owner:
            self.machine.stats.add(copy.size)
        return int(copy.nbytes)

    def remirror_block(self, owner: int, bid: BlockID) -> int:
        """Rebuild a corrupted mirror from the (verified-live) block.

        The replacement copy travels owner -> holder like any refresh
        payload and is charged as partner traffic.  Returns the bytes
        moved.
        """
        block = self.machine.rank_blocks[owner][bid]
        holder = self._pairing.get(owner)
        self._copies[owner][bid] = self._store_copy(owner, holder, bid, block)
        self._tags[owner][bid] = _tag(block.interior)
        if holder is not None:
            self.machine.stats.add_partner(block.interior.size)
        return int(block.interior.nbytes)

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def restore_lost(self, dead_ranks: Iterable[int]) -> Tuple[int, int]:
        """Reconstruct dead ranks' blocks from their partner copies.

        The lost blocks — a contiguous interval of the SFC cut — are
        re-cut into contiguous chunks over the survivors and adopted
        there; each restored payload is a real wire message from the
        holder to the new owner and is charged accordingly.  Returns
        ``(blocks_restored, bytes_restored)``.
        """
        machine = self.machine
        alive = machine.alive_ranks
        if not alive:
            raise RuntimeError("cannot restore: every rank has failed")
        source: Dict[BlockID, Tuple[int, np.ndarray]] = {}
        for rank in dead_ranks:
            holder = self._pairing.get(rank)
            for bid, copy in self._copies.get(rank, {}).items():
                source[bid] = (holder, copy)
        order = {bid: i for i, bid in enumerate(machine.topology.sorted_ids())}
        lost = sorted(source, key=order.__getitem__)
        blocks = 0
        nbytes = 0
        for i, bid in enumerate(lost):
            target = alive[i * len(alive) // len(lost)]
            holder, copy = source[bid]
            machine.adopt_block(bid, target, copy)
            blocks += 1
            nbytes += copy.nbytes
            if holder is not None and holder != target:
                machine.stats.add(copy.size)
        return blocks, nbytes

    def rewind_alive(self) -> Tuple[int, int]:
        """Roll every surviving rank's blocks back to the snapshot.

        Each survivor restores from its own *local* snapshot — a
        rank-private memcpy with no wire traffic; ghosts are refilled
        by the next exchange.  Returns ``(blocks_restored,
        bytes_restored)``.
        """
        machine = self.machine
        blocks = 0
        nbytes = 0
        for owner in machine.alive_ranks:
            for bid, copy in self._copies.get(owner, {}).items():
                machine.rank_blocks[owner][bid].interior[...] = copy
                blocks += 1
                nbytes += copy.nbytes
        return blocks, nbytes
