"""Phase-boundary memory scrubbing: detection tier of the SDC defense.

A flipped bit in live block storage is *silent*: unlike a rank death or
a checksum-failed wire message, nothing raises.  The corrupted cells are
read by the next stencil sweep, smeared across neighbors by the next
exchange, and eventually committed to a checkpoint — at which point no
recovery tier can help.  The :class:`Scrubber` closes that hole by
verifying CRC32 content tags over every block at configurable phase
boundaries, turning silent corruption into a loud, *recoverable*
:class:`CorruptionError` while the damage is still confined to one
block.

Design constraints, mirroring the rest of the resilience stack:

* **Deterministic and wall-clock-free.**  Scrub scheduling depends only
  on the step index (``step % every == 0``), never on elapsed time, so
  scrub-enabled runs replay identically after a rollback.
* **Bit-for-bit transparent.**  Verification only *reads* state; a
  scrub-enabled fault-free run is bit-for-bit identical to baseline on
  every engine.  The tags live beside the data (arena
  :class:`~repro.core.integrity.RowLedger` or the scrubber's own map),
  never in it.
* **One detection per corruption.**  After reporting a mismatch the
  scrubber re-baselines the block's tag; the *recovery* tier decides
  what happens next (mirror repair, rewind, rollback, abort) and
  re-tags again after any repair.  Without the re-baseline a rolled-back
  run would re-detect the same stale mismatch forever.

The scrubber classifies each mismatch by region — ``interior`` (live
cells), ``ghost`` (halo only), ``mirror`` (a partner-store copy) — and
:func:`repro.resilience.recovery.run_with_recovery` maps the class onto
the self-healing ladder: verified-mirror in-place repair, exchange
rewrite, re-mirror, snapshot rewind, checkpoint rollback, abort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.protocol import phase_effect
from repro.core.integrity import RowLedger, content_crc
from repro.obs.metrics import METRICS
from repro.resilience.faults import BitFlip, FaultDetected, apply_bitflip

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.arena import BlockArena
    from repro.core.block import Block
    from repro.resilience.partner import PartnerStore

__all__ = [
    "CorruptEntry",
    "CorruptionError",
    "Scrubber",
    "apply_scripted_flips",
]

#: Memory regions a corruption can be localized to.
CORRUPT_REGIONS = ("interior", "ghost", "mirror", "staging")


@dataclass(frozen=True)
class CorruptEntry:
    """One block-level corruption diagnosis from a scrub pass."""

    region: str  #: "interior" | "ghost" | "mirror" | "staging"
    block: Optional[Hashable] = None  #: BlockID of the damaged block
    rank: Optional[int] = None  #: owning rank (mirror: the *owner*, not holder)
    expected: Optional[int] = None  #: tagged CRC32
    actual: Optional[int] = None  #: recomputed CRC32

    def describe(self) -> str:
        where = f" of block {self.block}" if self.block is not None else ""
        rank = f" (rank {self.rank})" if self.rank is not None else ""
        crc = (
            f" [crc {self.expected:#010x} != {self.actual:#010x}]"
            if self.expected is not None and self.actual is not None
            else ""
        )
        return f"{self.region}{where}{rank}{crc}"


class CorruptionError(FaultDetected):
    """Silent data corruption detected by a scrub or payload check.

    Carries the per-block diagnosis (``entries``) so the recovery driver
    can pick the cheapest valid repair per region — and so an
    unrecoverable run aborts with an actionable message instead of a
    bare CRC mismatch.
    """

    def __init__(self, step: int, entries: List[CorruptEntry]) -> None:
        self.step = int(step)
        self.entries: Tuple[CorruptEntry, ...] = tuple(entries)
        detail = "; ".join(e.describe() for e in self.entries) or "unknown"
        super().__init__(
            f"silent data corruption detected at step {step}: {detail}"
        )

    @property
    def regions(self) -> Tuple[str, ...]:
        return tuple(e.region for e in self.entries)


class Scrubber:
    """Deterministic integrity verification over tagged blocks.

    One scrubber serves every engine:

    * the **serial driver** attaches it to the forest's arena
      (:meth:`attach_arena`), so tags live in the arena's
      :class:`~repro.core.integrity.RowLedger` and survive compaction
      and growth by construction;
    * the **emulated** and **process** machines key tags by
      :class:`~repro.core.block_id.BlockID` in the scrubber's own map
      (their supervisor-side blocks are plain views — per-rank private
      copies or shared-memory rows — with no common arena binding).

    ``every`` is the scrub interval in steps; :meth:`due` gates the
    verification pass, while re-tagging at write boundaries is
    unconditional once scrubbing is on (tags must track every committed
    write or the next scrub would false-positive).
    """

    def __init__(self, every: int = 1) -> None:
        if every < 1:
            raise ValueError("scrub interval must be >= 1")
        self.every = int(every)
        self._tags: Dict[Hashable, Tuple[int, int]] = {}
        self._arena: Optional["BlockArena"] = None
        #: partner store whose mirrors the scrub also verifies; set by
        #: the recovery driver when the localized tier is active.
        self.partner: Optional["PartnerStore"] = None
        # Counters; mirrored into ``sdc.*`` metrics when enabled.
        self.scrubs = 0
        self.blocks_verified = 0
        self.mirrors_verified = 0
        self.mismatches = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_arena(self, arena: "BlockArena") -> None:
        """Store tags in ``arena``'s row ledger (serial-driver mode)."""
        if arena.ledger is None:
            arena.ledger = RowLedger(epoch=arena.layout_epoch)
        self._arena = arena

    def due(self, step: int) -> bool:
        """Whether a verification pass runs before executing ``step``."""
        return step % self.every == 0

    # ------------------------------------------------------------------
    # tagging
    # ------------------------------------------------------------------

    def _ledger_row(self, block: "Block") -> Optional[int]:
        if self._arena is None:
            return None
        row = getattr(block, "arena_row", None)
        return int(row) if row is not None else None

    def retag_block(self, key: Hashable, block: "Block") -> None:
        """Tag ``block``'s current contents as the trusted baseline."""
        tags = (content_crc(block.data), content_crc(block.interior))
        row = self._ledger_row(block)
        if row is not None:
            assert self._arena is not None and self._arena.ledger is not None
            self._arena.ledger.tag(row, *tags)
        else:
            self._tags[key] = tags

    def retag_blocks(self, blocks: Mapping[Hashable, "Block"]) -> None:
        for key, block in blocks.items():
            self.retag_block(key, block)

    def drop(self, key: Hashable) -> None:
        self._tags.pop(key, None)

    def lookup(self, key: Hashable, block: "Block") -> Optional[Tuple[int, int]]:
        row = self._ledger_row(block)
        if row is not None:
            assert self._arena is not None and self._arena.ledger is not None
            return self._arena.ledger.get(row)
        return self._tags.get(key)

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------

    @phase_effect("scrub")
    def verify_block(
        self, key: Hashable, block: "Block"
    ) -> Optional[CorruptEntry]:
        """Recompute one block's CRCs against its tag.

        Untagged blocks (fresh from refinement, not yet at a retag
        boundary) are skipped.  The interior CRC decides the region: a
        bad interior is live-state corruption; a good interior under a
        bad row CRC localizes the hit to the ghost halo.
        """
        tags = self.lookup(key, block)
        if tags is None:
            return None
        data_crc, interior_crc = tags
        self.blocks_verified += 1
        actual_interior = content_crc(block.interior)
        if actual_interior != interior_crc:
            return CorruptEntry(
                "interior", block=key,
                expected=interior_crc, actual=actual_interior,
            )
        actual_data = content_crc(block.data)
        if actual_data != data_crc:
            return CorruptEntry(
                "ghost", block=key, expected=data_crc, actual=actual_data,
            )
        return None

    @phase_effect("scrub")
    def scrub_blocks(
        self,
        blocks: Mapping[Hashable, "Block"],
        *,
        rank_of: Optional[Mapping[Hashable, int]] = None,
        partner: Optional["PartnerStore"] = None,
    ) -> List[CorruptEntry]:
        """One verification pass; returns every mismatch found.

        Mismatched blocks are re-baselined immediately (see module
        docstring) so each corruption is reported exactly once; the
        caller decides whether the entries are raised, repaired, or
        escalated.  When a ``partner`` store is given its mirror copies
        are verified too — a corrupt mirror must be found *before* it is
        ever considered as a repair source.
        """
        self.scrubs += 1
        verified_before = self.blocks_verified
        entries: List[CorruptEntry] = []
        for key, block in blocks.items():
            entry = self.verify_block(key, block)
            if entry is not None:
                if rank_of is not None:
                    entry = CorruptEntry(
                        entry.region, block=entry.block,
                        rank=rank_of.get(key),
                        expected=entry.expected, actual=entry.actual,
                    )
                entries.append(entry)
                self.retag_block(key, block)
        if partner is not None:
            for owner, bid, expected, actual in partner.verify_copies():
                self.mirrors_verified += 1
                if expected != actual:
                    entries.append(
                        CorruptEntry(
                            "mirror", block=bid, rank=owner,
                            expected=expected, actual=actual,
                        )
                    )
        self.mismatches += len(entries)
        if METRICS.enabled:
            METRICS.inc("sdc.scrubs")
            METRICS.inc(
                "sdc.blocks_verified", self.blocks_verified - verified_before
            )
            if entries:
                METRICS.inc("sdc.mismatches", len(entries))
        return entries

    def __repr__(self) -> str:
        return (
            f"Scrubber(every={self.every}, scrubs={self.scrubs}, "
            f"verified={self.blocks_verified}, mismatches={self.mismatches})"
        )


def _ghost_slab(block: "Block") -> np.ndarray:
    """The innermost low-side ghost layer along axis 0.

    Chosen as the injection site for ``ghost`` flips because every
    block's face-adjacent ghost layer is rewritten by the next exchange
    (neighbor message or physical BC) — the property that makes ghost
    corruption repairable at zero cost.  Corner ghost cells are
    excluded; only the face slab over the interior extent of the other
    axes is targeted.
    """
    g = block.n_ghost
    sl = (slice(None), slice(g - 1, g)) + tuple(
        slice(g, g + m) for m in block.m[1:]
    )
    return block.data[sl]


def apply_scripted_flips(
    flips: List[BitFlip],
    blocks: Mapping[Hashable, "Block"],
    partner: Optional["PartnerStore"] = None,
) -> List[BitFlip]:
    """Apply scripted bitflips to live state; return the staging flips.

    ``interior``/``ghost`` flips index the blocks in the mapping's
    (deterministic, SFC-sorted) order; ``mirror`` flips index the
    partner store's copies and are skipped when no partner tier is
    active.  ``staging`` flips hit in-flight exchange buffers, which do
    not exist yet at the step boundary — they are returned for the
    machine to fire mid-exchange.
    """
    staged: List[BitFlip] = []
    ordered = list(blocks.values())
    for f in flips:
        if f.target == "staging":
            staged.append(f)
        elif f.target == "mirror":
            if partner is None:
                continue
            keys = partner.mirror_keys()
            if not keys:
                continue
            owner, bid = keys[f.block % len(keys)]
            view = partner.copy_view(owner, bid)
            if view is not None:
                apply_bitflip(view, f.byte, f.bit)
        elif ordered:
            block = ordered[f.block % len(ordered)]
            target = block.interior if f.target == "interior" else _ghost_slab(block)
            apply_bitflip(target, f.byte, f.bit)
    return staged
