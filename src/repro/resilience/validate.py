"""Forest invariant validation.

:func:`validate_forest` checks every structural invariant the adaptive
block design relies on and returns a list of
:class:`InvariantViolation` records (empty = healthy):

* **coverage** — the leaves tile the domain exactly once, and no leaf
  is a descendant of another leaf;
* **level-jump** — adjacent leaves differ by at most
  ``max_level_jump`` levels (the paper's refinement-level constraint);
* **neighbor pointers** — every stored face-neighbor pointer matches a
  fresh recomputation, and pointers are symmetric (if A lists B, B
  lists A across the opposite face);
* **ghost consistency** — every ghost cell holds exactly what a fresh
  exchange would put there (run this *after* an exchange; it detects
  stale or scribbled halos).

The ghost check is side-effect free: block data is snapshotted,
a reference exchange is run, and the original data — stale ghosts
included — is restored before returning, so a validator pass never
masks the corruption it reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.forest import BlockForest, ForestError
from repro.core.ghost import BoundaryHandler, fill_ghosts

__all__ = ["InvariantViolation", "validate_forest", "assert_valid_forest"]


@dataclass(frozen=True)
class InvariantViolation:
    """One detected breach of a forest invariant."""

    check: str  #: "coverage" | "overlap" | "level-jump" | "neighbor" | "ghost"
    block: Optional[object]  #: offending BlockID (None for global checks)
    detail: str

    def __str__(self) -> str:
        where = f" at {self.block}" if self.block is not None else ""
        return f"[{self.check}]{where}: {self.detail}"


def _check_coverage(forest: BlockForest, out: List[InvariantViolation]) -> None:
    total = sum(forest.blocks[bid].box.volume for bid in forest.blocks)
    if not np.isclose(total, forest.domain.volume, rtol=1e-10):
        out.append(
            InvariantViolation(
                "coverage",
                None,
                f"leaf volume {total} != domain volume {forest.domain.volume}",
            )
        )
    for bid in forest.blocks:
        anc = bid
        while anc.level > 0:
            anc = anc.parent
            if anc in forest.blocks:
                out.append(
                    InvariantViolation(
                        "overlap",
                        bid,
                        f"leaf {bid} and its ancestor {anc} are both present",
                    )
                )
                break


def _check_level_jumps(forest: BlockForest, out: List[InvariantViolation]) -> None:
    for bid, block in forest.blocks.items():
        for fn in block.face_neighbors.values():
            for nid in fn.ids:
                if abs(nid.level - bid.level) > forest.max_level_jump:
                    out.append(
                        InvariantViolation(
                            "level-jump",
                            bid,
                            f"level {bid.level} faces leaf {nid} at level "
                            f"{nid.level} (max jump {forest.max_level_jump})",
                        )
                    )


def _check_neighbor_pointers(
    forest: BlockForest, out: List[InvariantViolation]
) -> None:
    from repro.util.geometry import iter_faces, opposite_face, face_axis

    for bid, block in forest.blocks.items():
        for face in iter_faces(forest.ndim):
            stored = block.face_neighbors.get(face)
            if stored is None:
                out.append(
                    InvariantViolation(
                        "neighbor", bid, f"face {face} has no neighbor pointer"
                    )
                )
                continue
            try:
                fresh = forest.find_face_neighbors(bid, face)
            except ForestError as exc:
                out.append(InvariantViolation("neighbor", bid, str(exc)))
                continue
            if stored != fresh:
                out.append(
                    InvariantViolation(
                        "neighbor",
                        bid,
                        f"face {face} pointer {stored} is stale "
                        f"(recomputed: {fresh})",
                    )
                )
                continue
            # Symmetry: every listed neighbor must point back at me on
            # faces of the same axis (a coarser neighbor's pointer may
            # list my siblings too; mine must be among them).
            axis = face_axis(face)
            for nid in stored.ids:
                if nid not in forest.blocks:
                    out.append(
                        InvariantViolation(
                            "neighbor",
                            bid,
                            f"face {face} points at {nid}, which is not a leaf",
                        )
                    )
                    continue
                back_ids = set()
                for back_face in (2 * axis, 2 * axis + 1):
                    back = forest.blocks[nid].face_neighbors.get(back_face)
                    if back is not None:
                        back_ids.update(back.ids)
                if bid not in back_ids:
                    out.append(
                        InvariantViolation(
                            "neighbor",
                            bid,
                            f"asymmetric pointer: face {face} lists {nid}, "
                            f"which does not point back",
                        )
                    )


def _check_ghosts(
    forest: BlockForest,
    bc: Optional[BoundaryHandler],
    out: List[InvariantViolation],
) -> None:
    saved = {bid: blk.data.copy() for bid, blk in forest.blocks.items()}
    try:
        fill_ghosts(forest, bc)
        for bid, blk in forest.blocks.items():
            if not np.array_equal(blk.data, saved[bid], equal_nan=True):
                n_bad = int(
                    np.sum(
                        ~(
                            (blk.data == saved[bid])
                            | (np.isnan(blk.data) & np.isnan(saved[bid]))
                        )
                    )
                )
                out.append(
                    InvariantViolation(
                        "ghost",
                        bid,
                        f"{n_bad} ghost value(s) differ from a fresh exchange",
                    )
                )
    finally:
        for bid, blk in forest.blocks.items():
            blk.data[...] = saved[bid]


def validate_forest(
    forest: BlockForest,
    *,
    bc: Optional[BoundaryHandler] = None,
    check_ghosts: bool = True,
) -> List[InvariantViolation]:
    """Run every invariant check; return all violations found.

    ``bc`` must match the boundary handler the simulation uses so the
    ghost reference exchange reproduces the run's halos.  Set
    ``check_ghosts=False`` when ghosts are legitimately stale (e.g.
    right after :meth:`BlockForest.adapt`, before the next exchange).
    """
    out: List[InvariantViolation] = []
    _check_coverage(forest, out)
    _check_level_jumps(forest, out)
    _check_neighbor_pointers(forest, out)
    # A structurally broken forest would crash the reference exchange;
    # only probe ghosts once the topology checks pass.
    if check_ghosts and not out:
        _check_ghosts(forest, bc, out)
    return out


def assert_valid_forest(
    forest: BlockForest,
    *,
    bc: Optional[BoundaryHandler] = None,
    check_ghosts: bool = True,
) -> None:
    """Raise :class:`ForestError` listing every violation found."""
    violations = validate_forest(forest, bc=bc, check_ghosts=check_ghosts)
    if violations:
        raise ForestError(
            "forest invariant validation failed:\n"
            + "\n".join(f"  - {v}" for v in violations)
        )
