"""Checkpoint manager: rotation, discovery, and restart metadata.

A :class:`Checkpointer` owns a directory of forest checkpoints written
through :func:`repro.amr.io.save_forest` (atomic write, format version,
content checksum) and keeps only the newest ``keep`` of them —
the rotation policy every long-running AMR production code uses so disk
usage stays bounded while a recent restart point always exists.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.amr.io import (
    CheckpointError,
    checkpoint_metadata,
    load_forest,
    save_forest,
)
from repro.core.forest import BlockForest

__all__ = ["CheckpointInfo", "Checkpointer"]


@dataclass(frozen=True)
class CheckpointInfo:
    """One on-disk checkpoint: where it lives and when it was taken."""

    path: Path
    step: int
    time: float


class Checkpointer:
    """Rotating checkpoint store for a simulation run.

    Parameters
    ----------
    directory:
        Where checkpoint files live (created if missing).
    keep:
        How many checkpoints to retain; older ones are deleted after
        each save.
    prefix:
        Filename prefix; files are named ``<prefix>-<step:08d>.npz``.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        keep: int = 3,
        prefix: str = "ckpt",
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix
        self._pattern = re.compile(re.escape(prefix) + r"-(\d+)\.npz$")
        #: checkpoints skipped as unreadable by :meth:`latest`, newest
        #: last — surfaced so a recovery that silently fell back to an
        #: older restart point remains observable and debuggable.
        self.quarantined: List[Path] = []

    # ------------------------------------------------------------------

    def _path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{step:08d}.npz"

    def save(self, forest: BlockForest, *, step: int, time: float) -> CheckpointInfo:
        """Atomically write a checkpoint and rotate out old ones."""
        path = self._path_for(step)
        save_forest(forest, path, time=time, step=step)
        self._rotate()
        return CheckpointInfo(path=path, step=step, time=time)

    def _rotate(self) -> None:
        entries = self._scan()
        for step, path in entries[: -self.keep]:
            path.unlink(missing_ok=True)

    def _scan(self) -> List[Tuple[int, Path]]:
        """(step, path) pairs of on-disk checkpoints, oldest first."""
        out: List[Tuple[int, Path]] = []
        for path in self.directory.iterdir():
            m = self._pattern.match(path.name)
            if m:
                out.append((int(m.group(1)), path))
        out.sort()
        return out

    # ------------------------------------------------------------------

    def checkpoints(self) -> List[CheckpointInfo]:
        """All verified checkpoints on disk, oldest first."""
        out: List[CheckpointInfo] = []
        for step, path in self._scan():
            meta = checkpoint_metadata(path)
            out.append(
                CheckpointInfo(
                    path=path,
                    step=int(meta.get("step", step)),
                    time=float(meta.get("time", 0.0)),
                )
            )
        return out

    def latest(self) -> Optional[CheckpointInfo]:
        """Newest verified checkpoint, or None when the store is empty.

        A corrupt newest file (failed checksum, truncated) is skipped so
        recovery can fall back to the previous one — the reason more
        than one checkpoint is kept.  Skipped files are recorded in
        :attr:`quarantined` rather than silently discarded, so callers
        can report that the restart point is older than expected.
        """
        for step, path in reversed(self._scan()):
            try:
                meta = checkpoint_metadata(path)
            except CheckpointError:
                if path not in self.quarantined:
                    self.quarantined.append(path)
                continue
            return CheckpointInfo(
                path=path,
                step=int(meta.get("step", step)),
                time=float(meta.get("time", 0.0)),
            )
        return None

    def load_latest(self) -> Tuple[BlockForest, CheckpointInfo]:
        """Load the newest usable checkpoint."""
        info = self.latest()
        if info is None:
            raise CheckpointError(
                f"no usable checkpoint found in {self.directory}"
            )
        return load_forest(info.path), info
