"""Partner redundancy in shared memory, against real rank processes.

:class:`SharedPartnerRing` is the process backend's localized-recovery
tier.  It keeps the :class:`~repro.resilience.partner.PartnerStore`
buddy-ring protocol (SFC successor pairing, incremental CRC-tagged
refresh, snapshot consistency bookkeeping) but changes *where the
copies live* and *what recovery does with them*:

* every snapshot copy is written into the **holder's shared-memory
  mirror region** (the ``mirror_capacity`` rows of its
  :class:`~repro.parallel.shared_arena.SharedBlockArena` segment).  The
  copy genuinely lives in the buddy rank's memory: when the supervisor
  tears down a dead rank's segment, the mirrors that rank *held* are
  lost with it — exactly the double-fault physics the escalation ladder
  is built around — while the mirror of the dead rank's own blocks
  survives in its buddy's still-mapped segment;
* :meth:`restore_lost` first **respawns** each dead rank
  (:meth:`~repro.parallel.procmachine.ProcessMachine.try_respawn` — a
  fresh OS process attached to a fresh segment) and restores its blocks
  from the buddy's mirror straight back to the original owner: a pure
  shared-memory copy, zero disk reads.  Ranks that cannot be revived
  within the respawn budget degrade to the base class's SFC
  redistribution over the survivors, so a flaky node loses capacity
  but never correctness;
* survivors have **no rank-private snapshot** — their copies live in
  their buddy's segment like everyone else's — so :meth:`_has_local`
  (and therefore rewind/restore eligibility) additionally requires the
  *holder* to be alive, and :attr:`is_current` accounts for the
  machine's mid-step dirty flag: a failure after interiors started
  mutating makes the present-step snapshot unusable and forces the
  survivor rewind path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.analysis.protocol import phase_effect
from repro.core.block_id import BlockID
from repro.obs.metrics import METRICS
from repro.resilience.partner import PartnerStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.block import Block
    from repro.parallel.procmachine import ProcessMachine

__all__ = ["SharedPartnerRing"]


class SharedPartnerRing(PartnerStore):
    """Buddy-ring partner store whose copies live in shared segments."""

    def __init__(self, machine: "ProcessMachine") -> None:
        #: mirror-row allocation per holder rank: next free row index
        self._mirror_next: Dict[int, int] = {}
        #: (owner, bid) -> (holder, row) of the mirror slot in use
        self._mirror_slots: Dict[Tuple[int, BlockID], Tuple[int, int]] = {}
        self._deaths_seen = len(machine.deaths)
        super().__init__(machine)  # type: ignore[arg-type]

    def refresh(self) -> int:
        """Refresh, rebuilding first after any death/respawn cycle.

        A respawn restores the *membership set*, so the base class's
        membership check cannot see that a rank's segment — and every
        mirror row inside it — was replaced; stale views into the dead
        segment must not survive as snapshot copies.
        """
        machine: "ProcessMachine" = self.machine  # type: ignore[assignment]
        if self._deaths_seen != len(machine.deaths):
            self._rebuild()
        return super().refresh()

    # ------------------------------------------------------------------
    # storage: copies go into the holder's shared mirror region
    # ------------------------------------------------------------------

    def _rebuild(self) -> None:
        machine: "ProcessMachine" = self.machine  # type: ignore[assignment]
        super()._rebuild()
        self._mirror_next = {r: 0 for r in machine.alive_ranks}
        self._mirror_slots = {}
        self._deaths_seen = len(machine.deaths)

    @phase_effect("mirror-refresh")
    def _store_copy(
        self, owner: int, holder: Optional[int], bid: BlockID, block: "Block"
    ) -> np.ndarray:
        machine: "ProcessMachine" = self.machine  # type: ignore[assignment]
        if holder is None:
            # Unpaired (single alive rank): nowhere redundant to put it.
            return block.interior.copy()
        slot = self._mirror_slots.get((owner, bid))
        if slot is None or slot[0] != holder:
            row = self._mirror_next.get(holder, 0)
            seg = machine._segments[holder]
            if seg is None or row >= seg.mirror_capacity:
                # Mirror region exhausted or segment gone mid-window:
                # fall back to a supervisor-private copy (still usable
                # for restore, just not "in the holder's memory").
                return block.interior.copy()
            self._mirror_next[holder] = row + 1
            slot = (holder, row)
            self._mirror_slots[(owner, bid)] = slot
        seg = machine._segments[slot[0]]
        if seg is None:
            return block.interior.copy()
        view = seg.mirror_view(slot[1])
        view[...] = block.interior
        if METRICS.enabled:
            METRICS.inc("proc.partner_mirror_writes")
        return view

    # ------------------------------------------------------------------
    # eligibility: a copy is only usable while its holder is alive
    # ------------------------------------------------------------------

    def _holder_alive(self, rank: int) -> bool:
        holder = self._pairing.get(rank)
        return holder is not None and self.machine.alive[holder]

    def _has_local(self, rank: int) -> bool:
        """A survivor's snapshot also lives in its buddy's segment, so
        rewinding ``rank`` requires that buddy to still be alive."""
        return super()._has_local(rank) and self._holder_alive(rank)

    @property
    def is_current(self) -> bool:
        """Current additionally means *no interior has mutated since the
        snapshot*: the process backend flags the step dirty before the
        first compute phase, so a mid-step failure forces the rewind
        path instead of trusting half-stepped survivors."""
        machine: "ProcessMachine" = self.machine  # type: ignore[assignment]
        return super().is_current and not machine._interiors_dirty

    # ------------------------------------------------------------------
    # restore: respawn first, redistribute only as degradation
    # ------------------------------------------------------------------

    def restore_lost(self, dead_ranks: Iterable[int]) -> Tuple[int, int]:
        """Respawn dead ranks and restore their blocks from the mirrors.

        For every dead rank whose respawn succeeds, its blocks go back
        to the *original owner* — the fresh process — via a flat copy
        out of the buddy's mirror region (zero disk reads, no
        redistribution churn).  Ranks that stay dead after the respawn
        budget fall back to :meth:`PartnerStore.restore_lost`, which
        re-cuts their blocks over the survivors.
        """
        machine: "ProcessMachine" = self.machine  # type: ignore[assignment]
        dead = list(dead_ranks)
        revived = [r for r in dead if machine.try_respawn(r)]
        leftovers = [r for r in dead if r not in revived]
        blocks = 0
        nbytes = 0
        order = {
            bid: i for i, bid in enumerate(machine.topology.sorted_ids())
        }
        for rank in revived:
            copies = self._copies.get(rank, {})
            for bid in sorted(copies, key=order.__getitem__):
                copy = copies[bid]
                machine.adopt_block(bid, rank, copy)
                blocks += 1
                nbytes += copy.nbytes
                machine.stats.add(copy.size)
        if leftovers:
            if METRICS.enabled:
                METRICS.inc("proc.degraded_restores")
            machine._emit_supervisor(
                "degrade", ranks=list(leftovers), step=machine.step_index,
                reason="respawn budget exhausted; redistributing blocks",
            )
            more_blocks, more_bytes = super().restore_lost(leftovers)
            if METRICS.enabled:
                METRICS.inc("proc.redistributed_blocks", more_blocks)
            blocks += more_blocks
            nbytes += more_bytes
        return blocks, nbytes
