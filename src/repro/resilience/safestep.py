"""Safe stepping: post-step health checks, rollback, and dt retry.

A hyperbolic step that goes unstable — too-aggressive ``dt``, a shock
hitting a coarse-fine interface, a pathological limiter state — shows up
as NaN/Inf in the conserved variables or as negative density/pressure.
Left alone, the poison spreads through the ghost exchange and silently
destroys the whole run.

The serial driver's *safe mode* (``Simulation(..., safe_mode=True)``)
uses this module: after every advance it scans the forest
(:func:`scan_forest_health`), and on a detected failure rolls the
interiors back to the pre-step snapshot, halves ``dt``, and retries a
bounded number of times.  If the state never becomes healthy a
structured :class:`StepFailure` is surfaced via
:class:`UnrecoverableStep` instead of a silent divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.core.forest import BlockForest
from repro.solvers.scheme import FVScheme

__all__ = [
    "HealthIssue",
    "StepFailure",
    "UnrecoverableStep",
    "scan_forest_health",
]


@dataclass(frozen=True)
class HealthIssue:
    """First unhealthy value found in a forest scan."""

    reason: str  #: "non-finite" | "non-positive"
    block: object  #: BlockID of the offending block
    variable: int  #: conserved (non-finite) or primitive (positivity) index
    n_bad: int  #: unhealthy cells in that block

    def __str__(self) -> str:
        return (
            f"{self.reason} state in block {self.block} "
            f"(variable {self.variable}, {self.n_bad} cell(s))"
        )


@dataclass(frozen=True)
class StepFailure:
    """Structured report of a step that could not be completed safely."""

    step: int  #: step index that failed (0-based attempt)
    time: float  #: simulation time the step started from
    dt_attempts: Tuple[float, ...]  #: every dt tried, largest first
    issue: HealthIssue  #: what the last attempt's scan found

    def __str__(self) -> str:
        tried = ", ".join(f"{dt:.3e}" for dt in self.dt_attempts)
        return (
            f"step {self.step} at t={self.time:.6g} failed after "
            f"{len(self.dt_attempts)} attempt(s) (dt tried: {tried}): "
            f"{self.issue}"
        )


class UnrecoverableStep(RuntimeError):
    """Raised when safe mode exhausts its dt retries."""

    def __init__(self, failure: StepFailure) -> None:
        self.failure = failure
        super().__init__(str(failure))


def scan_forest_health(
    forest: BlockForest, scheme: FVScheme
) -> Optional[HealthIssue]:
    """First health problem in the forest's interiors, or None.

    Checks every conserved variable for NaN/Inf, then — for schemes
    declaring :attr:`FVScheme.positivity_indices` (density, pressure) —
    converts to primitives and checks those stay strictly positive.
    """
    positivity = getattr(scheme, "positivity_indices", ())
    for block in forest:
        u = block.interior
        finite = np.isfinite(u)
        if not finite.all():
            bad = ~finite
            var = int(np.argmax(bad.reshape(u.shape[0], -1).any(axis=1)))
            return HealthIssue("non-finite", block.id, var, int(bad.sum()))
        if positivity:
            # Check the conserved variables too: cons_to_prim may apply
            # a floor (Euler/MHD density), which would otherwise mask a
            # negative conserved density.
            w = scheme.cons_to_prim(u)
            for var in positivity:
                for arr in (u, w):
                    bad = ~(arr[var] > 0.0)
                    if bad.any():
                        return HealthIssue(
                            "non-positive", block.id, int(var), int(bad.sum())
                        )
    return None
