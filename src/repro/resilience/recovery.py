"""Checkpoint/restart recovery for the emulated distributed machine.

:func:`run_with_recovery` drives an
:class:`~repro.parallel.emulator.EmulatedMachine` through ``n_steps``
fixed-``dt`` steps under a (possibly faulty) execution, with periodic
checkpoints.  When the machine detects an injected failure — a dead
rank, a dropped or corrupted message — the driver performs the classic
global rollback protocol the paper-era production codes used:

1. the machine reports the failure (raises
   :class:`~repro.resilience.faults.FaultDetected`);
2. the surviving ranks agree on the last durable checkpoint;
3. the block-to-rank assignment is rebuilt over the survivors (SFC
   repartition — the dead rank simply drops out of the curve cut);
4. every block's data is restored from the checkpoint and the run
   replays forward from the checkpoint step.

Because the emulated arithmetic is deterministic and independent of the
assignment, the recovered run is **bit-for-bit identical** to a
fault-free run — the property the equivalence tests pin down.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional

from repro.amr.io import CheckpointError
from repro.core.forest import BlockForest
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.faults import FaultDetected, MessageFailure, RankFailure

__all__ = ["RecoveryEvent", "ResilienceReport", "run_with_recovery", "snapshot_forest"]


@dataclass(frozen=True)
class RecoveryEvent:
    """One detected fault and the rollback that handled it."""

    step: int  #: step being executed when the fault was detected
    kind: str  #: "rank-failure" | "message-drop" | "message-corrupt"
    detail: str  #: human-readable description from the detection
    restored_from_step: int  #: checkpoint step rolled back to
    replayed_steps: int  #: steps re-executed because of the rollback


@dataclass
class ResilienceReport:
    """What a fault-tolerant run did."""

    #: net simulated steps (replays don't count twice)
    steps_completed: int = 0
    #: extra step executions caused by rollbacks
    steps_replayed: int = 0
    checkpoints_written: int = 0
    events: List[RecoveryEvent] = field(default_factory=list)

    @property
    def n_recoveries(self) -> int:
        return len(self.events)


def snapshot_forest(machine) -> BlockForest:
    """A standalone forest holding the machine's current global state.

    The replicated topology is deep-copied and every alive rank's block
    interiors are written into it — the distributed-memory analogue of
    gathering the state to the I/O node before a checkpoint write.
    """
    clone = copy.deepcopy(machine.topology)
    for rank in machine.alive_ranks:
        for bid, block in machine.rank_blocks[rank].items():
            clone.blocks[bid].interior[...] = block.interior
    return clone


def _event_kind(exc: FaultDetected) -> str:
    if isinstance(exc, RankFailure):
        return "rank-failure"
    if isinstance(exc, MessageFailure):
        return f"message-{exc.mode}"
    return "fault"


def run_with_recovery(
    machine,
    *,
    n_steps: int,
    dt: float,
    checkpointer: Checkpointer,
    checkpoint_every: int = 1,
    max_recoveries: int = 8,
) -> ResilienceReport:
    """Advance ``machine`` ``n_steps`` times, surviving injected faults.

    A checkpoint of the initial state is always written (there must be
    something to roll back to), then every ``checkpoint_every`` steps.
    Raises the underlying :class:`FaultDetected` if recovery is needed
    more than ``max_recoveries`` times (a fault plan that keeps firing
    forever would otherwise hang the run), or :class:`CheckpointError`
    if no usable checkpoint exists at rollback time.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    report = ResilienceReport()
    checkpointer.save(snapshot_forest(machine), step=machine.step_index, time=machine.time)
    report.checkpoints_written += 1
    start = machine.step_index
    end = start + n_steps
    recoveries = 0
    while machine.step_index < end:
        step = machine.step_index
        try:
            machine.advance(dt)
        except FaultDetected as exc:
            recoveries += 1
            if recoveries > max_recoveries:
                raise
            info = checkpointer.latest()
            if info is None:
                raise CheckpointError(
                    "fault detected but no usable checkpoint exists to "
                    "roll back to"
                ) from exc
            forest, info = checkpointer.load_latest()
            machine.restore(forest, time=info.time, step_index=info.step)
            report.events.append(
                RecoveryEvent(
                    step=step,
                    kind=_event_kind(exc),
                    detail=str(exc),
                    restored_from_step=info.step,
                    replayed_steps=step - info.step,
                )
            )
            report.steps_replayed += step - info.step
            continue
        done = machine.step_index - start
        if done % checkpoint_every == 0 and machine.step_index < end:
            checkpointer.save(
                snapshot_forest(machine),
                step=machine.step_index,
                time=machine.time,
            )
            report.checkpoints_written += 1
    report.steps_completed = machine.step_index - start
    return report
