"""Fault recovery for the emulated distributed machine.

:func:`run_with_recovery` drives an
:class:`~repro.parallel.emulator.EmulatedMachine` through ``n_steps``
fixed-``dt`` steps under a (possibly faulty) execution, with periodic
checkpoints, and now supports two recovery tiers selected by
``strategy``:

* ``"global"`` — the paper-era protocol: on any detected fault, every
  rank rolls back to the last durable on-disk checkpoint, the
  block-to-rank assignment is rebuilt over the survivors (SFC
  repartition — the dead rank simply drops out of the curve cut), and
  the run replays forward.
* ``"local"`` / ``"auto"`` — localized recovery backed by an in-memory
  :class:`~repro.resilience.partner.PartnerStore`: a rank failure
  reconstructs **only the dead rank's blocks** from the partner copy
  (re-cut over the survivors), re-fills their ghosts from live
  neighbors at the next exchange, and replays only the bounded window
  since the last partner refresh — zero disk reads.  A mid-step message
  failure rewinds the survivors from the same in-memory snapshots.  A
  **double fault** (a rank dies and its partner copy is lost or stale)
  degrades gracefully: the driver escalates to the global checkpoint
  rollback automatically and records the escalation.

Because the emulated arithmetic is deterministic and independent of the
assignment, recovered runs are **bit-for-bit identical** to a
fault-free run under either tier — the property the equivalence tests
pin down.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.recorder import RunRecorder
    from repro.parallel.emulator import EmulatedMachine

from repro.amr.driver import StepRecord
from repro.amr.io import CheckpointError
from repro.analysis.protocol import phase_effect
from repro.core.forest import BlockForest
from repro.obs.metrics import METRICS
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.faults import FaultDetected, MessageFailure, RankFailure
from repro.resilience.partner import PartnerStore
from repro.resilience.scrub import CorruptionError
from repro.util.timing import wall_clock

__all__ = [
    "RecoveryEvent",
    "ResilienceReport",
    "run_with_recovery",
    "snapshot_forest",
    "RECOVERY_STRATEGIES",
]

#: Valid ``strategy`` arguments of :func:`run_with_recovery`.
RECOVERY_STRATEGIES = ("local", "global", "auto")


@dataclass(frozen=True)
class RecoveryEvent:
    """One detected fault and the recovery that handled it."""

    step: int  #: step being executed when the fault was detected
    kind: str  #: "rank-failure" | "message-drop" | "message-corrupt"
    detail: str  #: human-readable description from the detection
    restored_from_step: int  #: step whose state was restored
    replayed_steps: int  #: steps re-executed because of the rollback
    #: "local" (partner copies, in-memory) or "global" (disk checkpoint)
    strategy: str = "global"
    #: blocks whose data was rewritten during the recovery
    blocks_restored: int = 0
    #: bytes of block data moved to restore them
    bytes_restored: int = 0
    #: True when a localized attempt had to degrade to global rollback
    escalated: bool = False
    #: wall-clock seconds the recovery itself took
    duration: float = 0.0


@dataclass
class ResilienceReport:
    """What a fault-tolerant run did."""

    #: net simulated steps (replays don't count twice)
    steps_completed: int = 0
    #: extra step executions caused by rollbacks
    steps_replayed: int = 0
    checkpoints_written: int = 0
    events: List[RecoveryEvent] = field(default_factory=list)
    #: per-completed-step records (recovery cost lands on the step that
    #: finally succeeded); feed to :func:`repro.amr.io.history_to_csv`
    history: List[StepRecord] = field(default_factory=list)

    @property
    def n_recoveries(self) -> int:
        return len(self.events)

    @property
    def n_local_recoveries(self) -> int:
        return sum(1 for e in self.events if e.strategy == "local")

    @property
    def n_escalations(self) -> int:
        return sum(1 for e in self.events if e.escalated)

    @property
    def blocks_restored(self) -> int:
        return sum(e.blocks_restored for e in self.events)

    @property
    def bytes_restored(self) -> int:
        return sum(e.bytes_restored for e in self.events)

    @property
    def recovery_time(self) -> float:
        """Total wall-clock seconds spent inside recoveries."""
        return sum(e.duration for e in self.events)


def snapshot_forest(machine: "EmulatedMachine") -> BlockForest:
    """A standalone forest holding the machine's current global state.

    The replicated topology is deep-copied and every alive rank's block
    interiors are written into it — the distributed-memory analogue of
    gathering the state to the I/O node before a checkpoint write.
    """
    clone = copy.deepcopy(machine.topology)
    for rank in machine.alive_ranks:
        for bid, block in machine.rank_blocks[rank].items():
            clone.blocks[bid].interior[...] = block.interior
    return clone


def _event_kind(exc: FaultDetected) -> str:
    if isinstance(exc, RankFailure):
        return "rank-failure"
    if isinstance(exc, MessageFailure):
        return f"message-{exc.mode}"
    if isinstance(exc, CorruptionError):
        return "corruption"
    return "fault"


def _machine_retag(machine: "EmulatedMachine") -> None:
    """Re-baseline the machine's integrity tags after a repair/rewind
    (no-op when no scrubber is attached)."""
    retag = getattr(machine, "scrub_retag", None)
    if callable(retag):
        retag()


@phase_effect("heal")
def _attempt_corruption_repair(
    machine: "EmulatedMachine",
    partner: PartnerStore,
    exc: CorruptionError,
    step: int,
) -> Optional[Tuple[int, int, int]]:
    """The self-healing ladder for scrub-detected corruption.

    Per region, cheapest valid repair first:

    * ``mirror`` — the live block is still good (the same scrub pass
      verified it): rebuild the mirror from it, charged as partner
      traffic.
    * ``ghost`` — the next exchange rewrites the halo from live
      neighbors; nothing to move.
    * ``interior`` — repair in place from the SFC buddy's mirror, but
      only after the mirror's own CRC verifies (a corrupt mirror must
      never be a repair source) and only when the snapshot matches the
      present step; a stale-but-valid snapshot rewinds every survivor
      and replays the window instead.
    * ``staging`` — the exchange aborted mid-flight with ghosts
      partially written: rewind every survivor to the snapshot, like a
      message failure.

    Returns ``(restored_from_step, blocks, bytes)`` or None when no
    verified repair source exists (double corruption), in which case
    the caller escalates to the global checkpoint rollback.
    """
    interior_bids = {e.block for e in exc.entries if e.region == "interior"}
    mirror_keys = {
        (e.rank, e.block) for e in exc.entries if e.region == "mirror"
    }
    if any(bid in interior_bids for _, bid in mirror_keys):
        # A block and its own mirror are both corrupt: neither side can
        # vouch for the other — classic double corruption, escalate.
        return None
    blocks = 0
    nbytes = 0
    # Mirrors first: a later survivor rewind reads these copies, so they
    # must be rebuilt (from scrub-verified live blocks) before any use.
    for owner, bid in sorted(
        mirror_keys, key=lambda k: (k[0] if k[0] is not None else -1, str(k[1]))
    ):
        if owner is None or bid not in machine.rank_blocks[owner]:
            return None
        nbytes += partner.remirror_block(owner, bid)
        blocks += 1
    needs_rewind = any(e.region == "staging" for e in exc.entries)
    repairable: list = []
    for bid in interior_bids:
        owner = machine.assignment.get(bid)
        if owner is None or not partner.copy_is_valid(owner, bid):
            return None  # no verified source for this block
        repairable.append((owner, bid))
    if repairable and not partner.is_current:
        # Valid but stale mirrors: in-place repair would splice an old
        # interior into the present step, so rewind everyone instead.
        needs_rewind = True
    if needs_rewind:
        if not partner.can_rewind():
            return None
        b, n = partner.rewind_alive()
        blocks += b
        nbytes += n
        restored_from = partner.snapshot_step
        machine.step_index = partner.snapshot_step
        machine.time = partner.snapshot_time
    else:
        for owner, bid in repairable:
            nbytes += partner.repair_block(owner, bid)
            blocks += 1
        restored_from = step
    _machine_retag(machine)
    return restored_from, blocks, nbytes


def _attempt_local_recovery(
    machine: "EmulatedMachine",
    partner: PartnerStore,
    exc: FaultDetected,
    step: int,
) -> Optional[Tuple[int, int, int]]:
    """Localized recovery from the partner store.

    Returns ``(restored_from_step, blocks_restored, bytes_restored)``
    on success, or None when the partner copies cannot cover the fault
    (double fault / stale snapshot) and the caller must escalate.
    All preconditions are checked before any state is mutated.
    """
    if isinstance(exc, CorruptionError):
        return _attempt_corruption_repair(machine, partner, exc, step)
    if isinstance(exc, RankFailure):
        dead = list(exc.ranks)
        if not partner.can_restore(dead):
            return None
        blocks = 0
        nbytes = 0
        restored_from = machine.step_index
        if not partner.is_current:
            # Mid-window death: survivors rewind to the snapshot from
            # their partner buffers, then the window replays.
            b, n = partner.rewind_alive()
            blocks += b
            nbytes += n
            restored_from = partner.snapshot_step
            machine.step_index = partner.snapshot_step
            machine.time = partner.snapshot_time
        b, n = partner.restore_lost(dead)
        blocks += b
        nbytes += n
        return restored_from, blocks, nbytes
    if isinstance(exc, MessageFailure):
        # The failed step mutated ghosts (and, for two-stage schemes,
        # possibly interiors), so every survivor rewinds to the
        # snapshot — still pure in-memory movement, zero disk reads.
        if not partner.can_rewind():
            return None
        blocks, nbytes = partner.rewind_alive()
        machine.step_index = partner.snapshot_step
        machine.time = partner.snapshot_time
        return partner.snapshot_step, blocks, nbytes
    return None


def run_with_recovery(
    machine: "EmulatedMachine",
    *,
    n_steps: int,
    dt: float,
    checkpointer: Checkpointer,
    checkpoint_every: int = 1,
    max_recoveries: int = 8,
    strategy: str = "global",
    partner_refresh_every: int = 1,
    recorder: Optional["RunRecorder"] = None,
) -> ResilienceReport:
    """Advance ``machine`` ``n_steps`` times, surviving injected faults.

    A checkpoint of the initial state is always written (there must be
    something to fall back to even under localized recovery — it is the
    double-fault escape hatch), then every ``checkpoint_every`` steps.
    With ``strategy`` ``"local"`` or ``"auto"`` a
    :class:`~repro.resilience.partner.PartnerStore` is refreshed every
    ``partner_refresh_every`` completed steps and faults recover from
    it when possible, escalating to the global checkpoint rollback when
    not ("auto" and "local" currently share this policy; "global" never
    builds the partner tier).

    With a ``recorder`` (:class:`repro.obs.recorder.RunRecorder`) every
    completed step and every recovery is emitted to the JSONL event
    stream; recovery counters additionally report into the global
    metrics registry when it is enabled.  Both are pure observers: the
    recovered trajectory stays bit-for-bit identical.

    Raises the underlying :class:`FaultDetected` if recovery is needed
    more than ``max_recoveries`` times (a fault plan that keeps firing
    forever would otherwise hang the run), or :class:`CheckpointError`
    if no usable checkpoint exists at global rollback time.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if partner_refresh_every < 1:
        raise ValueError("partner_refresh_every must be >= 1")
    if strategy not in RECOVERY_STRATEGIES:
        raise ValueError(
            f"strategy must be one of {RECOVERY_STRATEGIES}, got {strategy!r}"
        )
    report = ResilienceReport()
    partner: Optional[PartnerStore] = None
    if strategy in ("local", "auto"):
        # Backends that place partner copies somewhere non-default (the
        # process backend mirrors them in shared memory) expose a
        # factory; everything else gets the in-process store.
        make = getattr(machine, "make_partner_store", None)
        partner = make() if callable(make) else PartnerStore(machine)
        partner.refresh()
        scrubber = getattr(machine, "scrubber", None)
        if scrubber is not None:
            # The scrub pass also verifies the partner mirrors, so a
            # corrupt mirror is caught before it could serve a repair.
            scrubber.partner = partner
    checkpointer.save(snapshot_forest(machine), step=machine.step_index, time=machine.time)
    report.checkpoints_written += 1
    start = machine.step_index
    end = start + n_steps
    recoveries = 0
    pending_recovery_time = 0.0
    while machine.step_index < end:
        step = machine.step_index
        wall_start = wall_clock()
        try:
            machine.advance(dt)
        except FaultDetected as exc:
            recoveries += 1
            if recoveries > max_recoveries:
                raise
            rec_start = wall_clock()
            local = None
            if partner is not None:
                local = _attempt_local_recovery(machine, partner, exc, step)
            if local is not None:
                restored_from, blocks, nbytes = local
                # New owners / rewound state: re-seed the redundancy
                # tier at the restored consistency point.
                partner.refresh()
                event = RecoveryEvent(
                    step=step,
                    kind=_event_kind(exc),
                    detail=str(exc),
                    restored_from_step=restored_from,
                    replayed_steps=step - restored_from,
                    strategy="local",
                    blocks_restored=blocks,
                    bytes_restored=nbytes,
                    duration=wall_clock() - rec_start,
                )
            else:
                info = checkpointer.latest()
                if info is None:
                    if isinstance(exc, CorruptionError):
                        # No verified mirror and no checkpoint: nothing
                        # can vouch for the data.  Abort with the
                        # per-block diagnosis rather than a bare
                        # checkpoint complaint.
                        raise exc
                    raise CheckpointError(
                        "fault detected but no usable checkpoint exists to "
                        "roll back to"
                    ) from exc
                forest, info = checkpointer.load_latest()
                machine.restore(forest, time=info.time, step_index=info.step)
                _machine_retag(machine)
                if partner is not None:
                    partner.refresh()
                event = RecoveryEvent(
                    step=step,
                    kind=_event_kind(exc),
                    detail=str(exc),
                    restored_from_step=info.step,
                    replayed_steps=step - info.step,
                    strategy="global",
                    blocks_restored=machine.topology.n_blocks,
                    bytes_restored=sum(
                        b.interior.nbytes
                        for b in machine.topology.blocks.values()
                    ),
                    escalated=partner is not None,
                    duration=wall_clock() - rec_start,
                )
            report.events.append(event)
            report.steps_replayed += event.replayed_steps
            pending_recovery_time += event.duration
            if isinstance(exc, CorruptionError):
                if event.strategy == "global":
                    action = "rollback"
                elif event.replayed_steps or "staging" in exc.regions:
                    # Staging corruption always rewinds the survivors,
                    # even when the snapshot is current (zero replay).
                    action = "rewind"
                else:
                    action = "mirror-repair"
                if METRICS.enabled:
                    METRICS.inc("sdc.corruptions", len(exc.entries))
                    METRICS.inc("sdc.repairs" if action == "mirror-repair"
                                else "sdc.escalations")
                    METRICS.inc("sdc.bytes_repaired", event.bytes_restored)
                if recorder is not None:
                    recorder.emit(
                        "corruption",
                        step=exc.step,
                        regions=list(exc.regions),
                        action=action,
                        blocks=[str(e.block) for e in exc.entries],
                        blocks_restored=event.blocks_restored,
                        bytes_restored=event.bytes_restored,
                        detail=str(exc),
                    )
            if METRICS.enabled:
                METRICS.inc("recovery.events")
                METRICS.inc("recovery.blocks_restored", event.blocks_restored)
                METRICS.inc("recovery.bytes_restored", event.bytes_restored)
                if event.escalated:
                    METRICS.inc("recovery.escalations")
                METRICS.observe("recovery.duration", event.duration)
            if recorder is not None:
                recorder.emit(
                    "recovery",
                    step=event.step,
                    fault=event.kind,
                    strategy=event.strategy,
                    replayed_steps=event.replayed_steps,
                    restored_from_step=event.restored_from_step,
                    blocks_restored=event.blocks_restored,
                    bytes_restored=event.bytes_restored,
                    escalated=event.escalated,
                    duration=event.duration,
                    detail=event.detail,
                )
            continue
        done = machine.step_index - start
        record = StepRecord(
            step=machine.step_index,
            time=machine.time,
            dt=dt,
            n_blocks=machine.topology.n_blocks,
            n_cells=machine.topology.n_cells,
            wall_time=wall_clock() - wall_start,
            recovery_time=pending_recovery_time or None,
        )
        report.history.append(record)
        if recorder is not None:
            recorder.emit(
                "step",
                step=record.step,
                t_sim=record.time,
                dt=record.dt,
                n_blocks=record.n_blocks,
                n_cells=record.n_cells,
                wall_time=record.wall_time,
                recovery_time=record.recovery_time,
            )
        pending_recovery_time = 0.0
        if partner is not None and done % partner_refresh_every == 0:
            partner.refresh()
        if done % checkpoint_every == 0 and machine.step_index < end:
            checkpointer.save(
                snapshot_forest(machine),
                step=machine.step_index,
                time=machine.time,
            )
            report.checkpoints_written += 1
    report.steps_completed = machine.step_index - start
    return report
