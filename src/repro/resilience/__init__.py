"""Resilience subsystem: fault injection, checkpoint/restart, validation.

Production block-AMR frameworks treat failure handling as a first-class
subsystem; this package supplies that layer for the reproduction:

* :mod:`repro.resilience.faults` — deterministic, seeded
  :class:`FaultPlan` killing emulated ranks and dropping/corrupting
  wire messages (transient or fatal), the detection exceptions, and the
  :class:`RetryPolicy` retrying transient faults with capped
  exponential backoff;
* :mod:`repro.resilience.checkpoint` — rotating :class:`Checkpointer`
  over the atomic, checksummed checkpoint format of
  :mod:`repro.amr.io`;
* :mod:`repro.resilience.partner` — in-memory :class:`PartnerStore`
  redundancy (each rank's blocks mirrored on its SFC buddy), the data
  source for localized recovery;
* :mod:`repro.resilience.recovery` — :func:`run_with_recovery` with
  selectable strategy: localized partner-copy recovery (only the lost
  blocks move, zero disk reads) degrading gracefully to the global
  rollback-and-replay on double faults, both bit-for-bit;
* :mod:`repro.resilience.scrub` — phase-boundary :class:`Scrubber`
  CRC verification turning silent bitflips into loud, recoverable
  :class:`CorruptionError` diagnoses, plus deterministic scripted
  bitflip injection for the SDC defense tests;
* :mod:`repro.resilience.validate` — :func:`validate_forest` invariant
  checks (coverage, level jumps, neighbor symmetry, ghost consistency);
* :mod:`repro.resilience.safestep` — post-step health scanning and the
  structured :class:`StepFailure` surfaced by the driver's safe mode.
"""

from repro.resilience.checkpoint import Checkpointer, CheckpointInfo
from repro.resilience.faults import (
    BitFlip,
    FaultDetected,
    FaultPlan,
    MessageFailure,
    MessageFault,
    RankFailure,
    RankKill,
    RetryPolicy,
    apply_bitflip,
)
from repro.resilience.partner import PartnerStore
from repro.resilience.procpartner import SharedPartnerRing
from repro.resilience.recovery import (
    RECOVERY_STRATEGIES,
    RecoveryEvent,
    ResilienceReport,
    run_with_recovery,
    snapshot_forest,
)
from repro.resilience.scrub import (
    CorruptEntry,
    CorruptionError,
    Scrubber,
    apply_scripted_flips,
)
from repro.resilience.safestep import (
    HealthIssue,
    StepFailure,
    UnrecoverableStep,
    scan_forest_health,
)
from repro.resilience.validate import (
    InvariantViolation,
    assert_valid_forest,
    validate_forest,
)

__all__ = [
    "BitFlip",
    "Checkpointer",
    "CheckpointInfo",
    "CorruptEntry",
    "CorruptionError",
    "Scrubber",
    "apply_bitflip",
    "apply_scripted_flips",
    "FaultDetected",
    "FaultPlan",
    "MessageFailure",
    "MessageFault",
    "RankFailure",
    "RankKill",
    "RetryPolicy",
    "PartnerStore",
    "SharedPartnerRing",
    "RECOVERY_STRATEGIES",
    "RecoveryEvent",
    "ResilienceReport",
    "run_with_recovery",
    "snapshot_forest",
    "HealthIssue",
    "StepFailure",
    "UnrecoverableStep",
    "scan_forest_health",
    "InvariantViolation",
    "assert_valid_forest",
    "validate_forest",
]
