"""Resilience subsystem: fault injection, checkpoint/restart, validation.

Production block-AMR frameworks treat failure handling as a first-class
subsystem; this package supplies that layer for the reproduction:

* :mod:`repro.resilience.faults` — deterministic, seeded
  :class:`FaultPlan` killing emulated ranks and dropping/corrupting
  wire messages, plus the detection exceptions;
* :mod:`repro.resilience.checkpoint` — rotating :class:`Checkpointer`
  over the atomic, checksummed checkpoint format of
  :mod:`repro.amr.io`;
* :mod:`repro.resilience.recovery` — global rollback-and-replay
  (:func:`run_with_recovery`) restoring a faulted emulated run
  bit-for-bit;
* :mod:`repro.resilience.validate` — :func:`validate_forest` invariant
  checks (coverage, level jumps, neighbor symmetry, ghost consistency);
* :mod:`repro.resilience.safestep` — post-step health scanning and the
  structured :class:`StepFailure` surfaced by the driver's safe mode.
"""

from repro.resilience.checkpoint import Checkpointer, CheckpointInfo
from repro.resilience.faults import (
    FaultDetected,
    FaultPlan,
    MessageFailure,
    MessageFault,
    RankFailure,
    RankKill,
)
from repro.resilience.recovery import (
    RecoveryEvent,
    ResilienceReport,
    run_with_recovery,
    snapshot_forest,
)
from repro.resilience.safestep import (
    HealthIssue,
    StepFailure,
    UnrecoverableStep,
    scan_forest_health,
)
from repro.resilience.validate import (
    InvariantViolation,
    assert_valid_forest,
    validate_forest,
)

__all__ = [
    "Checkpointer",
    "CheckpointInfo",
    "FaultDetected",
    "FaultPlan",
    "MessageFailure",
    "MessageFault",
    "RankFailure",
    "RankKill",
    "RecoveryEvent",
    "ResilienceReport",
    "run_with_recovery",
    "snapshot_forest",
    "HealthIssue",
    "StepFailure",
    "UnrecoverableStep",
    "scan_forest_health",
    "InvariantViolation",
    "assert_valid_forest",
    "validate_forest",
]
