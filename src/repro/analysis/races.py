"""Exchange race detector for the emulated distributed machine.

The emulator executes the parallel ghost exchange as an explicit,
deterministic message schedule.  That schedule has a correctness
contract — the same one a real bulk-synchronous AMR exchange has:

* a block's interior must not be mutated between the moment a message
  carrying its data is *published* (sent) and the end of that exchange
  epoch — otherwise receivers hold data that never existed on the
  owner (**write-after-publish**);
* a kernel may consume a block's ghost layers only after *every*
  message targeting that block in the **current step's** exchange
  epoch has been received (**read-before-receive** — this also catches
  running the kernel before the exchange, i.e. consuming the previous
  step's halos);
* a stage-2 prolongation may read its *source* block's own ghost cells
  (slope borders) only once the source's stage-1 messages — same-level
  copies and restrictions — have arrived in the open epoch.

:class:`RaceDetector` checks all three orderings from event callbacks
the machine emits (publish / receive / interior-write / consume),
using per-block version counters and per-epoch receive ledgers.  It is
a *logical* race detector: the emulation is single-threaded, but a
schedule that violates these orderings is exactly a data race in the
distributed machine the emulation stands in for.

Violations report the rank, block id, ghost-region offset (face), and
epoch, and raise :class:`ExchangeRaceError` immediately by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set, Tuple

__all__ = ["RaceDetector", "RaceViolation", "ExchangeRaceError"]

#: (source block, ghost-region offset) — one expected inbound message.
InboundKey = Tuple[object, Tuple[int, ...]]


@dataclass(frozen=True)
class RaceViolation:
    """One detected ordering violation in the exchange schedule."""

    kind: str  #: "write-after-publish" | "read-before-receive"
    rank: int  #: rank on which the violating access ran
    block: object  #: BlockID whose data the violation concerns
    offset: Optional[Tuple[int, ...]]  #: ghost-region direction, if any
    epoch: int  #: exchange epoch the violation occurred in
    detail: str

    def __str__(self) -> str:
        at = f" region {self.offset}" if self.offset is not None else ""
        return (
            f"[{self.kind}] rank {self.rank}, block {self.block}{at}, "
            f"epoch {self.epoch}: {self.detail}"
        )


class ExchangeRaceError(RuntimeError):
    """The emulated exchange schedule violated its ordering contract."""

    def __init__(self, violations: List[RaceViolation]) -> None:
        self.violations = list(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"exchange race detector: {len(self.violations)} violation(s)\n"
            f"{lines}"
        )


@dataclass(frozen=True)
class _Receipt:
    """Ledger entry: one message received into a ghost region."""

    epoch: int  #: epoch the payload arrived in
    step: int  #: step that epoch belonged to
    src_version: int  #: source interior version the payload carried


class RaceDetector:
    """Tracks exchange ordering events and flags logical data races.

    Parameters
    ----------
    expected_inbound:
        For every destination block, the set of ``(src_id, offset)``
        messages one full exchange delivers to it, split by stage:
        ``{dst: (stage1_keys, stage2_keys)}``.  Built by the machine
        from its transfer plan (see
        :meth:`repro.parallel.emulator.EmulatedMachine.attach_race_detector`).
    raise_immediately:
        Raise :class:`ExchangeRaceError` at the first violation
        (default).  Otherwise violations accumulate in
        :attr:`violations` for inspection via :meth:`check`.
    """

    def __init__(
        self,
        expected_inbound: Optional[
            Mapping[object, Tuple[Set[InboundKey], Set[InboundKey]]]
        ] = None,
        *,
        raise_immediately: bool = True,
    ) -> None:
        self.expected_inbound: Dict[
            object, Tuple[Set[InboundKey], Set[InboundKey]]
        ] = dict(expected_inbound or {})
        self.raise_immediately = raise_immediately
        self.violations: List[RaceViolation] = []
        self.epoch = 0  #: completed + current epoch counter
        self.step = 0  #: step counter (begin_step)
        self._epoch_open = False
        #: interior version per block (bumped by every interior write)
        self._version: Dict[object, int] = {}
        #: blocks whose data was sent in the currently open epoch
        self._published: Dict[object, List[Tuple[object, Tuple[int, ...]]]] = {}
        #: receive ledger: dst -> {(src, offset): _Receipt}
        self._received: Dict[object, Dict[InboundKey, _Receipt]] = {}

    # -- plumbing -----------------------------------------------------------

    def set_expected_inbound(
        self,
        expected: Mapping[object, Tuple[Set[InboundKey], Set[InboundKey]]],
    ) -> None:
        """Replace the expected-message sets (after a plan rebuild)."""
        self.expected_inbound = dict(expected)

    def _flag(
        self,
        kind: str,
        rank: int,
        block: object,
        offset: Optional[Tuple[int, ...]],
        detail: str,
    ) -> None:
        v = RaceViolation(kind, rank, block, offset, self.epoch, detail)
        self.violations.append(v)
        if self.raise_immediately:
            raise ExchangeRaceError([v])

    def check(self) -> None:
        """Raise if any violation has accumulated (deferred mode)."""
        if self.violations:
            raise ExchangeRaceError(self.violations)

    def version(self, bid: object) -> int:
        return self._version.get(bid, 0)

    # -- events emitted by the machine --------------------------------------

    def begin_step(self) -> None:
        """A new bulk-synchronous step starts: kernels of this step may
        only consume ghosts exchanged *within* it."""
        self.step += 1

    def begin_epoch(self) -> None:
        """One full ghost exchange starts."""
        self.epoch += 1
        self._epoch_open = True
        self._published = {}

    def end_epoch(self) -> None:
        """The exchange finished; subsequent interior writes are legal."""
        self._epoch_open = False

    def on_publish(
        self, src: object, dst: object, offset: Tuple[int, ...], rank: int
    ) -> None:
        """``src``'s data (interior or restricted sums) was sent toward
        the ghost region ``offset`` of ``dst``."""
        self._published.setdefault(src, []).append((dst, offset))

    def on_receive(
        self, dst: object, src: object, offset: Tuple[int, ...], rank: int
    ) -> None:
        """A payload from ``src`` landed in ``dst``'s ghost region."""
        self._received.setdefault(dst, {})[(src, offset)] = _Receipt(
            epoch=self.epoch, step=self.step, src_version=self.version(src)
        )

    def on_interior_write(self, bid: object, rank: int) -> None:
        """``bid``'s interior was mutated (kernel stage, restore, ...)."""
        self._version[bid] = self.version(bid) + 1
        if self._epoch_open and bid in self._published:
            dst, offset = self._published[bid][0]
            self._flag(
                "write-after-publish",
                rank,
                bid,
                offset,
                f"interior mutated after {len(self._published[bid])} "
                f"message(s) from it were already sent this epoch "
                f"(first toward {dst}); receivers hold data that never "
                f"existed on the owner",
            )

    def on_ghost_read(self, src: object, rank: int) -> None:
        """``src``'s own ghost cells are being read mid-exchange (stage-2
        prolongation slope borders): its stage-1 inbound messages must
        all have arrived in the currently open epoch."""
        stage1, _ = self.expected_inbound.get(src, (set(), set()))
        ledger = self._received.get(src, {})
        for key in sorted(stage1, key=repr):
            rec = ledger.get(key)
            if rec is None or rec.epoch != self.epoch:
                self._flag(
                    "read-before-receive",
                    rank,
                    src,
                    key[1],
                    f"stage-2 prolongation reads ghost cells of {src} "
                    f"before its stage-1 payload from {key[0]} arrived "
                    f"in epoch {self.epoch}",
                )
                return

    def on_consume(self, bid: object, rank: int) -> None:
        """A kernel is about to read ``bid``'s ghost layers."""
        stage1, stage2 = self.expected_inbound.get(bid, (set(), set()))
        ledger = self._received.get(bid, {})
        for key in sorted(stage1 | stage2, key=repr):
            src, offset = key
            rec = ledger.get(key)
            if rec is None:
                self._flag(
                    "read-before-receive",
                    rank,
                    bid,
                    offset,
                    f"kernel consumes ghosts of {bid} but the payload "
                    f"from {src} was never received",
                )
                return
            if rec.step != self.step:
                self._flag(
                    "read-before-receive",
                    rank,
                    bid,
                    offset,
                    f"kernel consumes ghosts of {bid} filled in step "
                    f"{rec.step}, but the current step is {self.step} "
                    f"(kernel ran before this step's exchange)",
                )
                return
