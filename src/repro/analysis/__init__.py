"""Static and dynamic correctness tooling for the adaptive-block code.

Three independent layers, all opt-in and zero-cost when disabled:

* :mod:`repro.analysis.poison` — a runtime **ghost-poison sanitizer**:
  ghost layers are filled with a signaling-NaN bit pattern before every
  exchange and the exact region each stencil kernel reads is verified
  clean afterwards, so a stale or never-filled ghost read is reported
  (block, face, cell count) instead of silently corrupting fluxes.
* :mod:`repro.analysis.races` — an **exchange race detector** for the
  emulated distributed machine: per-block version counters and
  per-epoch publish/receive/consume tracking detect write-after-publish
  and read-before-receive orderings in the message schedule.
* :mod:`repro.analysis.lint` — a custom **AST lint** (``repro lint``)
  encoding project invariants (no ``Block.data`` mutation outside
  kernel modules, no unseeded RNG, no bare ``except`` in recovery
  paths, no wall-clock reads in deterministic-replay code) with
  per-rule codes and ``# repro: noqa[RULE]`` suppression.

A fourth, fully static layer verifies the distributed backends
(``repro check``):

* :mod:`repro.analysis.protocol` — a declarative, machine-readable
  **spec of the supervisor/worker wire protocol** (phases, sequence
  numbers, CRC-checked replies, supervision timeouts, fault
  transitions, the heal ladder) plus an AST conformance layer that
  keeps the spec honest against the real modules;
* :mod:`repro.analysis.effects` — a **phase-effect analyzer** inferring
  which arena regions (interior/ghost/mirror/staging) each
  ``@phase_effect``-annotated function reads and writes, checked
  against the spec's per-phase contracts (lint rule REPRO106);
* :mod:`repro.analysis.modelcheck` — a bounded **explicit-state model
  checker** exploring protocol interleavings under fault injection and
  reporting deadlocks, lost wakeups, sequence divergence, double-frees,
  and unverified-mirror heals as replayable counterexample schedules.

See ``docs/static-analysis.md`` for the rule catalog and semantics.
"""

from repro.analysis.effects import (
    FunctionEffects,
    check_source as effect_check_source,
    infer_module_effects,
)
from repro.analysis.lint import (
    LintViolation,
    Rule,
    RULES,
    lint_paths,
    lint_source,
    rule_codes,
)
from repro.analysis.modelcheck import (
    CounterexampleTrace,
    EXPECTED_VIOLATION,
    MODEL_FAULTS,
    MUTATIONS,
    ModelCheckResult,
    check_protocol,
    replay_trace,
    schedule_faults,
)
from repro.analysis.protocol import (
    PROTOCOL,
    PROTOCOL_MODULES,
    ConformanceIssue,
    ProtocolSpec,
    check_conformance,
    contract_for,
    mutated,
    phase_effect,
)
from repro.analysis.poison import (
    GhostSanitizer,
    PoisonError,
    PoisonSite,
    POISON_BITS,
    check_interior_clean,
    check_stencil_ghosts,
    poison_value,
    poisoned_mask,
    poison_ghosts,
    poison_forest,
)
from repro.analysis.races import (
    ExchangeRaceError,
    RaceDetector,
    RaceViolation,
)

__all__ = [
    "GhostSanitizer",
    "PoisonError",
    "PoisonSite",
    "POISON_BITS",
    "check_interior_clean",
    "check_stencil_ghosts",
    "poison_value",
    "poisoned_mask",
    "poison_ghosts",
    "poison_forest",
    "ExchangeRaceError",
    "RaceDetector",
    "RaceViolation",
    "LintViolation",
    "Rule",
    "RULES",
    "lint_paths",
    "lint_source",
    "rule_codes",
    "PROTOCOL",
    "PROTOCOL_MODULES",
    "ConformanceIssue",
    "ProtocolSpec",
    "check_conformance",
    "contract_for",
    "mutated",
    "phase_effect",
    "FunctionEffects",
    "effect_check_source",
    "infer_module_effects",
    "CounterexampleTrace",
    "EXPECTED_VIOLATION",
    "MODEL_FAULTS",
    "MUTATIONS",
    "ModelCheckResult",
    "check_protocol",
    "replay_trace",
    "schedule_faults",
]
