"""``repro lint`` — AST-based lint rules encoding project invariants.

Generic linters cannot know that ``Block.data`` is owned by the kernel
and exchange layers, that every RNG in a resilience code path must be
seeded, or that wall-clock reads break deterministic replay.  These
rules do:

========== =============================================================
Code       Invariant
========== =============================================================
REPRO101   ``Block.data`` may be mutated only in data-owner modules
           (``core/``, ``solvers/``, the driver's rollback path, the
           validator's snapshot/restore) — everything else must go
           through ``interior`` / ``view()`` or stay read-only.
REPRO102   No unseeded RNG construction: ``default_rng()`` without a
           seed, ``random.Random()`` without a seed, or the legacy
           global-state ``np.random.*`` / ``random.*`` functions.
REPRO103   No bare ``except:`` — and in resilience/recovery paths, no
           silently-swallowing ``except ...: pass`` either: recovery
           must never mask the failure it is recovering from.
REPRO104   No wall-clock reads (``time.time``, ``perf_counter``,
           ``datetime.now``, ...) in deterministic-replay code
           (``resilience/``, the rank emulator): route them through
           ``repro.util.timing.wall_clock`` so replays can stub time.
REPRO105   No raw ``zlib.crc32``/``zlib.adler32``/``hashlib.*`` calls
           outside the checksum-owner modules (``core/integrity.py``,
           the checkpoint format, the wire supervisor): everything else
           must go through the :mod:`repro.core.integrity` helpers so
           checksum policy stays in one auditable place.
REPRO106   Functions annotated ``@phase_effect("op")`` may only read
           and write the arena regions the protocol spec declares for
           that phase (:mod:`repro.analysis.effects` infers the
           regions; :data:`repro.analysis.protocol.PROTOCOL` declares
           the contracts).
REPRO107   Protocol wire messages (``conn.send(...)`` calls and dict
           literals carrying both ``op`` and ``seq``) may be built only
           inside the spec-registered constructor functions — new
           message sites must be added to the spec first.
REPRO108   ``numba`` / ``llvmlite`` may be imported only inside
           ``repro/kernels/``: the JIT is an optional dependency, and
           every other module (and every test — use
           ``pytest.importorskip``) must keep importing cleanly when it
           is absent.
========== =============================================================

Suppression: append ``# repro: noqa`` (any rule) or
``# repro: noqa[REPRO104]`` (specific rules, comma-separated) to the
offending line.  Suppressions are deliberate and auditable — grep for
``repro: noqa`` to review every exception.

Per-directory configuration: ``lint_paths`` applies
:data:`DIR_CONFIGS` to files under ``tests/`` and ``benchmarks/`` —
REPRO101 is dropped there (tests legitimately poke ``.data`` to build
fixtures and corrupt state on purpose) while REPRO102 stays on and
REPRO104 is *forced* in ``tests/`` (scoped rules otherwise never fire
outside the package).  ``benchmarks/`` keep wall-clock access: timing
is their purpose.

The checker is pure stdlib ``ast`` — no third-party dependency — and
is exposed both as a library (:func:`lint_source`, :func:`lint_paths`)
and as the ``repro lint`` CLI subcommand.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import check_source as _effect_check
from repro.analysis.protocol import PROTOCOL, PROTOCOL_MODULES

__all__ = [
    "DIR_CONFIGS",
    "DirConfig",
    "LintViolation",
    "Rule",
    "RULES",
    "rule_codes",
    "lint_source",
    "lint_paths",
]


@dataclass(frozen=True)
class LintViolation:
    """One rule breach at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass(frozen=True)
class Rule:
    """One lint rule: code, summary, and module scope (path prefixes
    relative to the package root; empty = every module)."""

    code: str
    summary: str
    scope: Tuple[str, ...] = ()

    def applies_to(self, module_path: str) -> bool:
        if not self.scope:
            return True
        return any(module_path.startswith(p) for p in self.scope)


#: Modules allowed to mutate ``.data`` arrays directly: the kernel and
#: exchange layers that own the arrays, the serial driver (safe-mode
#: rollback restores snapshots), the invariant validator (side-effect-
#: free ghost probing restores the original bytes), the ghost-poison
#: sanitizer (whose whole job is writing into ghost storage), and the
#: cell-tree baseline (its tree nodes own their private ``.data``).
DATA_MUTATOR_MODULES: Tuple[str, ...] = (
    "repro/core/",
    "repro/solvers/",
    "repro/tree/",
    "repro/amr/driver.py",
    "repro/resilience/validate.py",
    "repro/analysis/poison.py",
)

#: Deterministic-replay modules: recovery must replay bit-for-bit, so
#: time may only enter through the stubbable ``wall_clock`` indirection.
REPLAY_MODULES: Tuple[str, ...] = (
    "repro/resilience/",
    "repro/parallel/emulator.py",
    "repro/parallel/procmachine.py",
    "repro/parallel/procworker.py",
    "repro/parallel/supervisor.py",
    "repro/parallel/shared_arena.py",
)

#: Recovery code paths where a swallowed exception can mask the very
#: fault being recovered from (bare ``except:`` is banned everywhere).
RECOVERY_MODULES: Tuple[str, ...] = ("repro/resilience/",)

#: Modules allowed to call ``zlib``/``hashlib`` checksum primitives
#: directly: the integrity helpers themselves, the checkpoint format
#: (file-level array checksum), the rotating checkpoint store, and the
#: wire supervisor (per-message reply CRCs).  Everything else must go
#: through :mod:`repro.core.integrity` so checksum policy — algorithm,
#: masking, what bytes a tag covers — stays in one auditable place.
CHECKSUM_OWNER_MODULES: Tuple[str, ...] = (
    "repro/core/integrity.py",
    "repro/amr/io.py",
    "repro/resilience/checkpoint.py",
    "repro/parallel/supervisor.py",
)

#: Modules whose ``@phase_effect`` annotations are checked against the
#: protocol spec's per-phase region contracts (REPRO106).
EFFECT_MODULES: Tuple[str, ...] = (
    "repro/core/",
    "repro/parallel/",
    "repro/resilience/",
)

#: The only modules allowed to import the optional JIT stack.  The
#: kernel-backend package wraps every ``import numba`` in the registry's
#: availability gate; an import anywhere else would make the whole repo
#: hard-require numba.
JIT_OWNER_MODULES: Tuple[str, ...] = ("repro/kernels/",)

#: Top-level distributions of the optional JIT stack (the ``jit`` extra).
_JIT_PACKAGES = ("numba", "llvmlite")

RULES: Tuple[Rule, ...] = (
    Rule(
        "REPRO101",
        "Block.data mutated outside kernel/exchange data-owner modules",
    ),
    Rule("REPRO102", "unseeded RNG construction or global-state RNG call"),
    Rule(
        "REPRO103",
        "bare except (everywhere) / exception swallowed in recovery path",
    ),
    Rule(
        "REPRO104",
        "wall-clock read in deterministic-replay code",
        scope=REPLAY_MODULES,
    ),
    Rule(
        "REPRO105",
        "raw zlib/hashlib checksum call outside checksum-owner modules",
    ),
    Rule(
        "REPRO106",
        "phase-effect violation: region access outside the phase's "
        "declared contract",
        scope=EFFECT_MODULES,
    ),
    Rule(
        "REPRO107",
        "protocol message built outside spec-registered constructors",
        scope=PROTOCOL_MODULES,
    ),
    Rule(
        "REPRO108",
        "optional JIT dependency (numba/llvmlite) imported outside "
        "repro/kernels/",
    ),
)


def rule_codes() -> Tuple[str, ...]:
    return tuple(r.code for r in RULES)


#: Legacy module-level RNG entry points backed by hidden global state.
_GLOBAL_RNG_FUNCS = {
    "numpy.random": {
        "rand", "randn", "random", "random_sample", "ranf", "sample",
        "randint", "random_integers", "choice", "shuffle", "permutation",
        "uniform", "normal", "standard_normal", "seed", "bytes",
    },
    "random": {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "seed", "betavariate",
        "expovariate", "triangular",
    },
}

#: Wall-clock reads that make a replay diverge from the original run.
_WALL_CLOCK_FUNCS = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "time.clock_gettime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9 ,]+)\])?", re.IGNORECASE
)


def _collect_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppressions: line -> None (all rules) or a code set."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return out


class _ImportAliases(ast.NodeVisitor):
    """Map local names to the dotted path they were imported as."""

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )


def _dotted_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an attribute chain to a dotted path, following import
    aliases at the root (``_time.perf_counter`` -> ``time.perf_counter``)."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    root = aliases.get(cur.id, cur.id)
    parts.append(root)
    return ".".join(reversed(parts))


def _normalize(dotted: str) -> str:
    """Fold the ``np``/``numpy`` spelling difference."""
    if dotted == "np.random" or dotted.startswith("np.random."):
        return "numpy" + dotted[2:]
    return dotted


class _Checker(ast.NodeVisitor):
    def __init__(
        self,
        module_path: str,
        aliases: Dict[str, str],
        force: FrozenSet[str] = frozenset(),
    ) -> None:
        self.module_path = module_path
        self.aliases = aliases
        self.found: List[Tuple[int, int, str, str]] = []
        self.in_replay = "REPRO104" in force or any(
            module_path.startswith(p) for p in REPLAY_MODULES
        )
        self.in_recovery = any(
            module_path.startswith(p) for p in RECOVERY_MODULES
        )
        self.is_data_owner = any(
            module_path.startswith(p) for p in DATA_MUTATOR_MODULES
        )
        self.is_checksum_owner = any(
            module_path.startswith(p) for p in CHECKSUM_OWNER_MODULES
        )
        self.is_jit_owner = any(
            module_path.startswith(p) for p in JIT_OWNER_MODULES
        )
        self.is_protocol_module = module_path in PROTOCOL_MODULES
        self._constructors: FrozenSet[str] = (
            PROTOCOL.constructor_qualnames(module_path)
            if self.is_protocol_module else frozenset()
        )
        self._scope: List[str] = []

    def _emit(self, node: ast.AST, code: str, message: str) -> None:
        self.found.append(
            (getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
             code, message)
        )

    # -- scope tracking (REPRO107 constructor qualnames) ----------------

    def _visit_scope(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, node.name)

    def _in_registered_constructor(self) -> bool:
        qual = ".".join(self._scope)
        return any(
            qual == reg or qual.startswith(reg + ".")
            for reg in self._constructors
        )

    # -- REPRO101: Block.data mutation ----------------------------------

    def _data_attr(self, target: ast.AST) -> Optional[ast.Attribute]:
        """The ``X.data`` attribute node if ``target`` writes through one
        (``X.data = ...``, ``X.data[...] = ...``, any subscript depth),
        else None."""
        node = target
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr == "data":
            return node
        return None

    def _check_data_write(self, target: ast.AST) -> None:
        if self.is_data_owner:
            return
        attr = self._data_attr(target)
        if attr is not None:
            self._emit(
                target,
                "REPRO101",
                "direct mutation of `.data` outside kernel/exchange "
                "data-owner modules; use `interior` / `view()` or move "
                "the write into a data-owner module",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            targets = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for t in targets:
                self._check_data_write(t)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_data_write(node.target)
        self.generic_visit(node)

    # -- REPRO102: unseeded RNG -----------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func, self.aliases)
        if dotted is not None:
            dotted = _normalize(dotted)
            head, _, leaf = dotted.rpartition(".")
            if leaf == "default_rng":
                seed_missing = not node.args and not any(
                    kw.arg in ("seed", None) for kw in node.keywords
                )
                seed_none = bool(node.args) and (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if seed_missing or seed_none:
                    self._emit(
                        node,
                        "REPRO102",
                        "default_rng() without a seed is entropy-seeded and "
                        "unreproducible; pass an explicit seed",
                    )
            elif dotted in ("random.Random", "numpy.random.RandomState") and not node.args:
                self._emit(
                    node,
                    "REPRO102",
                    f"{leaf}() without a seed is unreproducible; pass an "
                    "explicit seed",
                )
            elif head in _GLOBAL_RNG_FUNCS and leaf in _GLOBAL_RNG_FUNCS[head]:
                self._emit(
                    node,
                    "REPRO102",
                    f"global-state RNG call `{dotted}`; construct a seeded "
                    "Generator (`np.random.default_rng(seed)`) instead",
                )
            elif self.in_replay and dotted in _WALL_CLOCK_FUNCS:
                self._emit(
                    node,
                    "REPRO104",
                    f"wall-clock read `{dotted}` in deterministic-replay "
                    "code; use repro.util.timing.wall_clock() so replays "
                    "can stub time",
                )
            elif not self.is_checksum_owner and (
                dotted in ("zlib.crc32", "zlib.adler32")
                or head == "hashlib"
                or dotted == "hashlib"
            ):
                self._emit(
                    node,
                    "REPRO105",
                    f"raw checksum call `{dotted}` outside a checksum-owner "
                    "module; use the repro.core.integrity helpers "
                    "(crc_bytes / content_crc / crc_text) so integrity "
                    "policy stays centralized",
                )
        if (
            self.is_protocol_module
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "send"
            and not self._in_registered_constructor()
        ):
            self._emit(
                node,
                "REPRO107",
                "wire `.send(...)` outside a spec-registered message "
                "constructor; register the site in "
                "repro.analysis.protocol.PROTOCOL.constructors first",
            )
        self.generic_visit(node)

    # -- REPRO107: protocol message literals ----------------------------

    def visit_Dict(self, node: ast.Dict) -> None:
        if self.is_protocol_module and not self._in_registered_constructor():
            keys = {
                k.value for k in node.keys
                if isinstance(k, ast.Constant) and isinstance(k.value, str)
            }
            if "op" in keys and "seq" in keys:
                self._emit(
                    node,
                    "REPRO107",
                    "protocol command literal (op+seq dict) built outside "
                    "a spec-registered message constructor",
                )
        self.generic_visit(node)

    # -- REPRO108: optional JIT imports ---------------------------------

    def _check_jit_import(self, node: ast.AST, module: str) -> None:
        root = module.split(".")[0]
        if root in _JIT_PACKAGES and not self.is_jit_owner:
            self._emit(
                node,
                "REPRO108",
                f"`import {root}` outside repro/kernels/ makes the "
                "optional JIT stack a hard dependency; go through the "
                "repro.kernels backend registry (tests: "
                "`pytest.importorskip`)",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_jit_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and not node.level:
            self._check_jit_import(node, node.module)
        self.generic_visit(node)

    # -- REPRO103: bare / swallowing except -----------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._emit(
                node,
                "REPRO103",
                "bare `except:` catches SystemExit/KeyboardInterrupt and "
                "hides the real failure; name the exception type",
            )
        elif self.in_recovery and self._swallows(node):
            self._emit(
                node,
                "REPRO103",
                "exception silently swallowed in a recovery path; recovery "
                "code must surface or translate the failure it catches",
            )
        self.generic_visit(node)

    @staticmethod
    def _swallows(node: ast.ExceptHandler) -> bool:
        return len(node.body) == 1 and isinstance(
            node.body[0], (ast.Pass, ast.Continue)
        )


def lint_source(
    source: str,
    module_path: str,
    *,
    select: Optional[Iterable[str]] = None,
    display_path: Optional[str] = None,
    force: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Lint one module's source text.

    ``module_path`` is the package-relative path (``repro/core/block.py``)
    used for rule scoping; ``display_path`` (default: ``module_path``)
    is what violations report.  ``select`` restricts to specific codes;
    ``force`` treats the named scoped rules as in-scope regardless of
    ``module_path`` (how ``tests/`` gets REPRO104 despite living outside
    the package).
    """
    display = display_path if display_path is not None else module_path
    wanted = set(select) if select is not None else set(rule_codes())
    forced = frozenset(force) if force is not None else frozenset()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            LintViolation(
                display, exc.lineno or 1, exc.offset or 0,
                "REPRO000", f"syntax error: {exc.msg}",
            )
        ]
    imports = _ImportAliases()
    imports.visit(tree)
    checker = _Checker(module_path, imports.aliases, forced)
    checker.visit(tree)
    found = list(checker.found)
    if "REPRO106" in wanted and (
        "REPRO106" in forced
        or any(module_path.startswith(p) for p in EFFECT_MODULES)
    ):
        found.extend(_effect_check(source, module_path))
    suppressed = _collect_suppressions(source)
    out: List[LintViolation] = []
    for line, col, code, message in found:
        if code not in wanted:
            continue
        if line in suppressed:
            codes = suppressed[line]
            if codes is None or code in codes:
                continue
        out.append(LintViolation(display, line, col, code, message))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def _module_path_for(path: Path) -> str:
    """Package-relative path used for rule scoping: everything from the
    last ``repro`` component on (files outside the package get their
    plain name and only unscoped rules)."""
    parts = path.parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


@dataclass(frozen=True)
class DirConfig:
    """Per-directory rule configuration applied by :func:`lint_paths`.

    ``drop`` removes rules that are meaningless or counterproductive in
    the directory; ``force`` treats scoped rules as in-scope there (see
    :func:`lint_source`).
    """

    drop: Tuple[str, ...] = ()
    force: Tuple[str, ...] = ()


#: Directory-name keyed configs, matched against any path component.
#: Tests poke ``.data`` to build fixtures and corrupt state on purpose
#: (REPRO101 off) but must stay deterministic (REPRO102 on, REPRO104
#: forced).  Benchmarks additionally own their wall clocks — timing is
#: the product, so REPRO104 stays off there.
DIR_CONFIGS: Dict[str, DirConfig] = {
    "tests": DirConfig(drop=("REPRO101",), force=("REPRO104",)),
    "benchmarks": DirConfig(drop=("REPRO101", "REPRO104")),
}


def _config_for(path: Path) -> Optional[DirConfig]:
    # Files inside the package keep the default scoping even if some
    # ancestor directory happens to be named "tests".
    parts = path.parts
    if "repro" in parts:
        return None
    for part in parts:
        cfg = DIR_CONFIGS.get(part)
        if cfg is not None:
            return cfg
    return None


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
) -> List[LintViolation]:
    """Lint files and directory trees; returns all violations found.

    An explicit ``select`` narrows the rule set everywhere; on top of
    that, files under a :data:`DIR_CONFIGS` directory get that
    directory's dropped/forced rules.
    """
    out: List[LintViolation] = []
    for path in iter_python_files([Path(p) for p in paths]):
        cfg = _config_for(path)
        wanted = set(select) if select is not None else set(rule_codes())
        force: Tuple[str, ...] = ()
        if cfg is not None:
            wanted -= set(cfg.drop)
            force = cfg.force
        out.extend(
            lint_source(
                path.read_text(encoding="utf-8"),
                _module_path_for(path),
                select=wanted,
                display_path=str(path),
                force=force,
            )
        )
    return out
