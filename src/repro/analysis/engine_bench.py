"""Batched-vs-blocked engine benchmark (the Fig-5-style workload).

The paper's Figure 5 plots MHD time-per-cell against block size: small
blocks pay fixed per-block overhead per cell (loop startup on the T3D,
numpy dispatch here), large blocks fall off cache.  This module measures
the same time-per-cell metric for both execution engines on uniform
periodic 3-D/2-D MHD forests across block sizes, giving the speedup
curve of the batched engine — large in the dispatch-bound small-block
regime, shrinking as blocks grow compute-bound.

Shared by the ``repro bench`` CLI subcommand, the
``benchmarks/test_batched_speedup.py`` benchmark, and CI's perf-smoke
job, so they all agree on what the workload is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.config import SimulationConfig
from repro.amr.driver import Simulation
from repro.kernels import available_backends
from repro.solvers.mhd import MHDScheme
from repro.util.geometry import Box

__all__ = [
    "BenchCase",
    "DEFAULT_CASES",
    "QUICK_CASES",
    "build_uniform_mhd",
    "run_case",
    "run_cases",
    "check_equivalence",
    "check_backend_equivalence",
]


@dataclass(frozen=True)
class BenchCase:
    """One operating point of the speedup benchmark."""

    ndim: int
    m: int          #: cells per block edge
    n_root: int     #: root blocks per axis (B = n_root ** ndim)
    steps: int      #: timed steps (after warmup)

    @property
    def label(self) -> str:
        return f"{self.ndim}D {self.m}^{self.ndim} B={self.n_root ** self.ndim}"


#: Fig-5-style sweep: fixed total cells per dimension, block size varying
#: from the dispatch-bound regime (4^d) to the paper's production sizes
#: (16x16 in 2-D, 8^3 in 3-D).
DEFAULT_CASES: Tuple[BenchCase, ...] = (
    BenchCase(2, 4, 32, 6),
    BenchCase(2, 8, 16, 6),
    BenchCase(2, 16, 8, 6),
    BenchCase(3, 4, 8, 4),
    BenchCase(3, 8, 4, 4),
)

#: Reduced sweep for CI smoke runs.
QUICK_CASES: Tuple[BenchCase, ...] = (
    BenchCase(2, 4, 16, 4),
    BenchCase(2, 16, 4, 4),
)


def build_uniform_mhd(
    ndim: int,
    m: int,
    n_root: int,
    engine: str,
    *,
    seed: int = 42,
    batch_tile: Optional[int] = None,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> Simulation:
    """Uniform periodic MHD forest with smooth random-ish initial data."""
    cfg = SimulationConfig(
        domain=Box((0.0,) * ndim, (1.0,) * ndim),
        n_root=(n_root,) * ndim,
        m=(m,) * ndim,
        periodic=(True,) * ndim,
        max_level=0,
    )
    forest = cfg.make_forest(8)
    scheme = MHDScheme(ndim)
    rng = np.random.default_rng(seed)
    for block in forest:
        w = np.empty((8,) + block.m)
        w[0] = 1.0 + 0.1 * rng.random(block.m)
        w[1:4] = 0.1
        w[4] = 1.0
        w[5:8] = 0.2
        block.interior[...] = scheme.prim_to_cons(w)
    return Simulation(
        forest,
        scheme,
        engine=engine,
        batch_tile=batch_tile,
        kernel_backend=kernel_backend,
        batch_tile_bytes=batch_tile_bytes,
    )


def _time_engine(
    case: BenchCase,
    engine: str,
    warmup: int,
    *,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    # JIT backends compile on first dispatch, i.e. during the warm-up
    # steps (warmup >= 1 always) — the timed region below never pays
    # compilation; the compile seconds are reported separately.
    with build_uniform_mhd(
        case.ndim,
        case.m,
        case.n_root,
        engine,
        kernel_backend=kernel_backend,
        batch_tile_bytes=batch_tile_bytes,
    ) as sim:
        kernels = sim.scheme.kernels
        compile_before = kernels.compile_s
        for _ in range(max(warmup, 1)):
            sim.step()
        sim.timer = type(sim.timer)()  # drop warmup from phase totals
        n_cells = sim.forest.n_cells
        t0 = time.perf_counter()
        for _ in range(case.steps):
            sim.step()
        elapsed = time.perf_counter() - t0
        cell_steps = n_cells * case.steps
        result: Dict[str, Any] = {
            "cells_per_s": cell_steps / elapsed,
            "us_per_cell": elapsed / cell_steps * 1e6,
            "wall_s": elapsed,
            "compile_s": round(kernels.compile_s - compile_before, 6),
            "phases_s": {k: round(v, 6) for k, v in sim.timer.totals.items()},
        }
        if engine == "batched":
            row_bytes = sim.forest.arena.pool[:1].nbytes
            result["tile_rows"] = sim._tile_rows(row_bytes)
            result["tile_bytes"] = sim.batch_tile_bytes
        return result


def run_case(
    case: BenchCase,
    *,
    warmup: int = 2,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """Measure both engines on one case; returns a result record."""
    blocked = _time_engine(
        case, "blocked", warmup,
        kernel_backend=kernel_backend, batch_tile_bytes=batch_tile_bytes,
    )
    batched = _time_engine(
        case, "batched", warmup,
        kernel_backend=kernel_backend, batch_tile_bytes=batch_tile_bytes,
    )
    return {
        "label": case.label,
        "ndim": case.ndim,
        "m": case.m,
        "n_blocks": case.n_root ** case.ndim,
        "steps": case.steps,
        "kernel_backend": kernel_backend,
        "blocked": blocked,
        "batched": batched,
        "speedup": batched["cells_per_s"] / blocked["cells_per_s"],
    }


def run_cases(
    cases: Sequence[BenchCase] = DEFAULT_CASES,
    *,
    warmup: int = 2,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Measure every case (see :func:`run_case`)."""
    return [
        run_case(
            c, warmup=warmup,
            kernel_backend=kernel_backend, batch_tile_bytes=batch_tile_bytes,
        )
        for c in cases
    ]


def _final_state(sim: Simulation) -> Dict[Any, np.ndarray]:
    return {
        bid: sim.forest.blocks[bid].interior.copy() for bid in sim.forest.blocks
    }


def check_equivalence(
    case: BenchCase,
    *,
    steps: Optional[int] = None,
    kernel_backend: str = "numpy",
) -> bool:
    """True iff both engines produce bit-identical state on ``case``."""
    n_steps = case.steps if steps is None else steps
    sims = {}
    for engine in ("blocked", "batched"):
        with build_uniform_mhd(
            case.ndim, case.m, case.n_root, engine,
            kernel_backend=kernel_backend,
        ) as sim:
            for _ in range(n_steps):
                sim.step()
            sims[engine] = sim
    a, b = sims["blocked"], sims["batched"]
    if sorted(a.forest.blocks) != sorted(b.forest.blocks):
        return False
    if [r.dt for r in a.history] != [r.dt for r in b.history]:
        return False
    return all(
        np.array_equal(a.forest.blocks[bid].interior, b.forest.blocks[bid].interior)
        for bid in a.forest.blocks
    )


def check_backend_equivalence(
    case: BenchCase,
    *,
    steps: Optional[int] = None,
    engine: str = "batched",
    backends: Optional[Sequence[str]] = None,
) -> bool:
    """True iff every kernel backend produces bit-identical state.

    Runs the case once per backend (``backends`` defaults to everything
    available in this environment — a single-backend environment is
    trivially equivalent) and compares final block state and the dt
    history with exact equality.
    """
    names = tuple(available_backends() if backends is None else backends)
    if len(names) < 2:
        return True
    n_steps = case.steps if steps is None else steps
    reference: Optional[Dict[Any, np.ndarray]] = None
    ref_dts: Optional[List[float]] = None
    for backend in names:
        with build_uniform_mhd(
            case.ndim, case.m, case.n_root, engine, kernel_backend=backend
        ) as sim:
            for _ in range(n_steps):
                sim.step()
            state = _final_state(sim)
            dts = [r.dt for r in sim.history]
        if reference is None:
            reference, ref_dts = state, dts
            continue
        if dts != ref_dts or state.keys() != reference.keys():
            return False
        if not all(np.array_equal(state[k], reference[k]) for k in reference):
            return False
    return True
