"""Batched-vs-blocked engine benchmark (the Fig-5-style workload).

The paper's Figure 5 plots MHD time-per-cell against block size: small
blocks pay fixed per-block overhead per cell (loop startup on the T3D,
numpy dispatch here), large blocks fall off cache.  This module measures
the same time-per-cell metric for both execution engines on uniform
periodic 3-D/2-D MHD forests across block sizes, giving the speedup
curve of the batched engine — large in the dispatch-bound small-block
regime, shrinking as blocks grow compute-bound.

Shared by the ``repro bench`` CLI subcommand, the
``benchmarks/test_batched_speedup.py`` benchmark, and CI's perf-smoke
job, so they all agree on what the workload is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.config import SimulationConfig
from repro.amr.driver import Simulation
from repro.kernels import available_backends
from repro.solvers.mhd import MHDScheme
from repro.util.geometry import Box

__all__ = [
    "BenchCase",
    "DEFAULT_CASES",
    "QUICK_CASES",
    "build_uniform_mhd",
    "build_deep_pulse",
    "run_case",
    "run_cases",
    "run_subcycle_case",
    "check_equivalence",
    "check_backend_equivalence",
    "check_subcycle_equivalence",
]


@dataclass(frozen=True)
class BenchCase:
    """One operating point of the speedup benchmark."""

    ndim: int
    m: int          #: cells per block edge
    n_root: int     #: root blocks per axis (B = n_root ** ndim)
    steps: int      #: timed steps (after warmup)

    @property
    def label(self) -> str:
        return f"{self.ndim}D {self.m}^{self.ndim} B={self.n_root ** self.ndim}"


#: Fig-5-style sweep: fixed total cells per dimension, block size varying
#: from the dispatch-bound regime (4^d) to the paper's production sizes
#: (16x16 in 2-D, 8^3 in 3-D).
DEFAULT_CASES: Tuple[BenchCase, ...] = (
    BenchCase(2, 4, 32, 6),
    BenchCase(2, 8, 16, 6),
    BenchCase(2, 16, 8, 6),
    BenchCase(3, 4, 8, 4),
    BenchCase(3, 8, 4, 4),
)

#: Reduced sweep for CI smoke runs.
QUICK_CASES: Tuple[BenchCase, ...] = (
    BenchCase(2, 4, 16, 4),
    BenchCase(2, 16, 4, 4),
)


def build_uniform_mhd(
    ndim: int,
    m: int,
    n_root: int,
    engine: str,
    *,
    seed: int = 42,
    batch_tile: Optional[int] = None,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> Simulation:
    """Uniform periodic MHD forest with smooth random-ish initial data."""
    cfg = SimulationConfig(
        domain=Box((0.0,) * ndim, (1.0,) * ndim),
        n_root=(n_root,) * ndim,
        m=(m,) * ndim,
        periodic=(True,) * ndim,
        max_level=0,
    )
    forest = cfg.make_forest(8)
    scheme = MHDScheme(ndim)
    rng = np.random.default_rng(seed)
    for block in forest:
        w = np.empty((8,) + block.m)
        w[0] = 1.0 + 0.1 * rng.random(block.m)
        w[1:4] = 0.1
        w[4] = 1.0
        w[5:8] = 0.2
        block.interior[...] = scheme.prim_to_cons(w)
    return Simulation(
        forest,
        scheme,
        engine=engine,
        batch_tile=batch_tile,
        kernel_backend=kernel_backend,
        batch_tile_bytes=batch_tile_bytes,
    )


def _time_engine(
    case: BenchCase,
    engine: str,
    warmup: int,
    *,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    # JIT backends compile on first dispatch, i.e. during the warm-up
    # steps (warmup >= 1 always) — the timed region below never pays
    # compilation; the compile seconds are reported separately.
    with build_uniform_mhd(
        case.ndim,
        case.m,
        case.n_root,
        engine,
        kernel_backend=kernel_backend,
        batch_tile_bytes=batch_tile_bytes,
    ) as sim:
        kernels = sim.scheme.kernels
        compile_before = kernels.compile_s
        for _ in range(max(warmup, 1)):
            sim.step()
        sim.timer = type(sim.timer)()  # drop warmup from phase totals
        n_cells = sim.forest.n_cells
        t0 = time.perf_counter()
        for _ in range(case.steps):
            sim.step()
        elapsed = time.perf_counter() - t0
        cell_steps = n_cells * case.steps
        result: Dict[str, Any] = {
            "cells_per_s": cell_steps / elapsed,
            "us_per_cell": elapsed / cell_steps * 1e6,
            "wall_s": elapsed,
            "compile_s": round(kernels.compile_s - compile_before, 6),
            "phases_s": {k: round(v, 6) for k, v in sim.timer.totals.items()},
        }
        if engine == "batched":
            row_bytes = sim.forest.arena.pool[:1].nbytes
            result["tile_rows"] = sim._tile_rows(row_bytes)
            result["tile_bytes"] = sim.batch_tile_bytes
        return result


def run_case(
    case: BenchCase,
    *,
    warmup: int = 2,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """Measure both engines on one case; returns a result record."""
    blocked = _time_engine(
        case, "blocked", warmup,
        kernel_backend=kernel_backend, batch_tile_bytes=batch_tile_bytes,
    )
    batched = _time_engine(
        case, "batched", warmup,
        kernel_backend=kernel_backend, batch_tile_bytes=batch_tile_bytes,
    )
    return {
        "label": case.label,
        "ndim": case.ndim,
        "m": case.m,
        "n_blocks": case.n_root ** case.ndim,
        "steps": case.steps,
        "kernel_backend": kernel_backend,
        "blocked": blocked,
        "batched": batched,
        "speedup": batched["cells_per_s"] / blocked["cells_per_s"],
    }


def run_cases(
    cases: Sequence[BenchCase] = DEFAULT_CASES,
    *,
    warmup: int = 2,
    kernel_backend: str = "numpy",
    batch_tile_bytes: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Measure every case (see :func:`run_case`)."""
    return [
        run_case(
            c, warmup=warmup,
            kernel_backend=kernel_backend, batch_tile_bytes=batch_tile_bytes,
        )
        for c in cases
    ]


# ----------------------------------------------------------------------
# deep-hierarchy subcycling case
# ----------------------------------------------------------------------

#: deep-pulse workload: advection velocity, pulse center, pulse width
_PULSE_V = (1.0, 0.5)
_PULSE_C = (0.1, 0.1)
_PULSE_SIGMA = 0.05


def _deep_pulse_exact(t: float) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Exact advected-Gaussian profile at time ``t`` (periodic unit
    square), as an ``exact(x, y)`` callable for ``error_vs``."""

    def profile(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        dx = ((x - _PULSE_C[0] - _PULSE_V[0] * t + 0.5) % 1.0) - 0.5
        dy = ((y - _PULSE_C[1] - _PULSE_V[1] * t + 0.5) % 1.0) - 0.5
        return np.exp(-(dx * dx + dy * dy) / (2.0 * _PULSE_SIGMA**2))

    return profile


def build_deep_pulse(
    levels: int = 3,
    *,
    engine: str = "blocked",
    kernel_backend: str = "numpy",
    subcycle: bool = False,
    n_root: int = 4,
    m: int = 8,
) -> Simulation:
    """Advected Gaussian on a deep *static* hierarchy: ``levels`` nested
    refinements piled on one corner root block (plus whatever the 2:1
    cascade drags along), most of the domain staying coarse — the
    workload where level-local time stepping pays the most.
    """
    from repro.core.block_id import BlockID
    from repro.solvers.advection import AdvectionScheme

    cfg = SimulationConfig(
        domain=Box((0.0, 0.0), (1.0, 1.0)),
        n_root=(n_root, n_root),
        m=(m, m),
        periodic=(True, True),
        max_level=levels,
    )
    forest = cfg.make_forest(1)
    for lvl in range(levels):
        forest.adapt([BlockID(lvl, (0, 0))])
    profile = _deep_pulse_exact(0.0)
    for block in forest:
        block.interior[0] = profile(*block.meshgrid())
    return Simulation(
        forest,
        AdvectionScheme(_PULSE_V, order=2),
        engine=engine,
        kernel_backend=kernel_backend,
        subcycle=subcycle,
    )


def run_subcycle_case(
    *,
    levels: int = 3,
    coarse_steps: int = 6,
    engine: str = "batched",
    kernel_backend: str = "numpy",
) -> Dict[str, Any]:
    """Subcycled vs global-dt work on the deep hierarchy.

    The subcycled run takes ``coarse_steps`` coarse steps; the global
    run integrates to the same physical time.  The headline metric is
    block updates per unit physical time: the measured advantage should
    be at least the ablation-predicted factor
    ``n_blocks * 2^depth / sum_b 2^(level_b - level_min)`` (exact when
    both runs step at their CFL limits), at matched solution error.
    """
    from repro.amr.subcycle import level_divisors

    with build_deep_pulse(
        levels, engine=engine, kernel_backend=kernel_backend, subcycle=True
    ) as sim_s:
        present = sorted({b.level for b in sim_s.forest.blocks.values()})
        divisor = level_divisors(present)
        n_blocks = sim_s.forest.n_blocks
        depth = present[-1] - present[0]
        predicted = (
            n_blocks * (1 << depth)
            / sum(divisor[b.level] for b in sim_s.forest)
        )
        updates_s = 0
        t0 = time.perf_counter()
        for _ in range(coarse_steps):
            dt = sim_s.stable_dt()
            sim_s.advance(dt)
            updates_s += sim_s.updates_per_step()
        wall_s = time.perf_counter() - t0
        t_end = sim_s.time
        err_s = sim_s.error_vs(_deep_pulse_exact(t_end))
        substeps = dict(sim_s._last_substeps or {})
    with build_deep_pulse(
        levels, engine=engine, kernel_backend=kernel_backend
    ) as sim_g:
        updates_g = 0
        t0 = time.perf_counter()
        while sim_g.time < t_end - 1e-12:
            dt = min(sim_g.stable_dt(), t_end - sim_g.time)
            sim_g.advance(dt)
            updates_g += sim_g.updates_per_step()
        wall_g = time.perf_counter() - t0
        err_g = sim_g.error_vs(_deep_pulse_exact(sim_g.time))
    measured = updates_g / updates_s
    return {
        "label": f"deep pulse L{levels}",
        "levels": len(present),
        "depth": depth,
        "n_blocks": n_blocks,
        "engine": engine,
        "kernel_backend": kernel_backend,
        "coarse_steps": coarse_steps,
        "t_end": t_end,
        "substeps_per_coarse_step": {str(k): v for k, v in substeps.items()},
        "subcycled": {
            "updates": updates_s,
            "updates_per_time": updates_s / t_end,
            "wall_s": round(wall_s, 6),
            "error": err_s,
        },
        "global": {
            "updates": updates_g,
            "updates_per_time": updates_g / t_end,
            "wall_s": round(wall_g, 6),
            "error": err_g,
        },
        "predicted_factor": predicted,
        "measured_factor": measured,
        "beats_global": bool(measured >= predicted * (1.0 - 1e-9)),
        "matched_error": bool(err_s <= 3.0 * err_g + 1e-4),
    }


def check_subcycle_equivalence(
    *,
    levels: int = 3,
    steps: int = 3,
    backends: Optional[Sequence[str]] = None,
) -> bool:
    """True iff the subcycled driver is bit-identical across engine x
    kernel backend on the deep hierarchy (final state and dt history)."""
    names = tuple(available_backends() if backends is None else backends)
    reference: Optional[Dict[Any, np.ndarray]] = None
    ref_dts: Optional[List[float]] = None
    for backend in names:
        for engine in ("blocked", "batched"):
            with build_deep_pulse(
                levels, engine=engine, kernel_backend=backend, subcycle=True
            ) as sim:
                dts = []
                for _ in range(steps):
                    dt = sim.stable_dt()
                    dts.append(dt)
                    sim.advance(dt)
                state = _final_state(sim)
            if reference is None:
                reference, ref_dts = state, dts
                continue
            if dts != ref_dts or state.keys() != reference.keys():
                return False
            if not all(
                np.array_equal(state[k], reference[k]) for k in reference
            ):
                return False
    return True


def _final_state(sim: Simulation) -> Dict[Any, np.ndarray]:
    return {
        bid: sim.forest.blocks[bid].interior.copy() for bid in sim.forest.blocks
    }


def check_equivalence(
    case: BenchCase,
    *,
    steps: Optional[int] = None,
    kernel_backend: str = "numpy",
) -> bool:
    """True iff both engines produce bit-identical state on ``case``."""
    n_steps = case.steps if steps is None else steps
    sims = {}
    for engine in ("blocked", "batched"):
        with build_uniform_mhd(
            case.ndim, case.m, case.n_root, engine,
            kernel_backend=kernel_backend,
        ) as sim:
            for _ in range(n_steps):
                sim.step()
            sims[engine] = sim
    a, b = sims["blocked"], sims["batched"]
    if sorted(a.forest.blocks) != sorted(b.forest.blocks):
        return False
    if [r.dt for r in a.history] != [r.dt for r in b.history]:
        return False
    return all(
        np.array_equal(a.forest.blocks[bid].interior, b.forest.blocks[bid].interior)
        for bid in a.forest.blocks
    )


def check_backend_equivalence(
    case: BenchCase,
    *,
    steps: Optional[int] = None,
    engine: str = "batched",
    backends: Optional[Sequence[str]] = None,
) -> bool:
    """True iff every kernel backend produces bit-identical state.

    Runs the case once per backend (``backends`` defaults to everything
    available in this environment — a single-backend environment is
    trivially equivalent) and compares final block state and the dt
    history with exact equality.
    """
    names = tuple(available_backends() if backends is None else backends)
    if len(names) < 2:
        return True
    n_steps = case.steps if steps is None else steps
    reference: Optional[Dict[Any, np.ndarray]] = None
    ref_dts: Optional[List[float]] = None
    for backend in names:
        with build_uniform_mhd(
            case.ndim, case.m, case.n_root, engine, kernel_backend=backend
        ) as sim:
            for _ in range(n_steps):
                sim.step()
            state = _final_state(sim)
            dts = [r.dt for r in sim.history]
        if reference is None:
            reference, ref_dts = state, dts
            continue
        if dts != ref_dts or state.keys() != reference.keys():
            return False
        if not all(np.array_equal(state[k], reference[k]) for k in reference):
            return False
    return True
