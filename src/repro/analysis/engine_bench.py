"""Batched-vs-blocked engine benchmark (the Fig-5-style workload).

The paper's Figure 5 plots MHD time-per-cell against block size: small
blocks pay fixed per-block overhead per cell (loop startup on the T3D,
numpy dispatch here), large blocks fall off cache.  This module measures
the same time-per-cell metric for both execution engines on uniform
periodic 3-D/2-D MHD forests across block sizes, giving the speedup
curve of the batched engine — large in the dispatch-bound small-block
regime, shrinking as blocks grow compute-bound.

Shared by the ``repro bench`` CLI subcommand, the
``benchmarks/test_batched_speedup.py`` benchmark, and CI's perf-smoke
job, so they all agree on what the workload is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.amr.config import SimulationConfig
from repro.amr.driver import Simulation
from repro.solvers.mhd import MHDScheme
from repro.util.geometry import Box

__all__ = [
    "BenchCase",
    "DEFAULT_CASES",
    "QUICK_CASES",
    "build_uniform_mhd",
    "run_case",
    "run_cases",
    "check_equivalence",
]


@dataclass(frozen=True)
class BenchCase:
    """One operating point of the speedup benchmark."""

    ndim: int
    m: int          #: cells per block edge
    n_root: int     #: root blocks per axis (B = n_root ** ndim)
    steps: int      #: timed steps (after warmup)

    @property
    def label(self) -> str:
        return f"{self.ndim}D {self.m}^{self.ndim} B={self.n_root ** self.ndim}"


#: Fig-5-style sweep: fixed total cells per dimension, block size varying
#: from the dispatch-bound regime (4^d) to the paper's production sizes
#: (16x16 in 2-D, 8^3 in 3-D).
DEFAULT_CASES: Tuple[BenchCase, ...] = (
    BenchCase(2, 4, 32, 6),
    BenchCase(2, 8, 16, 6),
    BenchCase(2, 16, 8, 6),
    BenchCase(3, 4, 8, 4),
    BenchCase(3, 8, 4, 4),
)

#: Reduced sweep for CI smoke runs.
QUICK_CASES: Tuple[BenchCase, ...] = (
    BenchCase(2, 4, 16, 4),
    BenchCase(2, 16, 4, 4),
)


def build_uniform_mhd(
    ndim: int,
    m: int,
    n_root: int,
    engine: str,
    *,
    seed: int = 42,
    batch_tile: Optional[int] = None,
) -> Simulation:
    """Uniform periodic MHD forest with smooth random-ish initial data."""
    cfg = SimulationConfig(
        domain=Box((0.0,) * ndim, (1.0,) * ndim),
        n_root=(n_root,) * ndim,
        m=(m,) * ndim,
        periodic=(True,) * ndim,
        max_level=0,
    )
    forest = cfg.make_forest(8)
    scheme = MHDScheme(ndim)
    rng = np.random.default_rng(seed)
    for block in forest:
        w = np.empty((8,) + block.m)
        w[0] = 1.0 + 0.1 * rng.random(block.m)
        w[1:4] = 0.1
        w[4] = 1.0
        w[5:8] = 0.2
        block.interior[...] = scheme.prim_to_cons(w)
    return Simulation(forest, scheme, engine=engine, batch_tile=batch_tile)


def _time_engine(case: BenchCase, engine: str, warmup: int) -> Dict[str, Any]:
    with build_uniform_mhd(case.ndim, case.m, case.n_root, engine) as sim:
        for _ in range(warmup):
            sim.step()
        sim.timer = type(sim.timer)()  # drop warmup from phase totals
        n_cells = sim.forest.n_cells
        t0 = time.perf_counter()
        for _ in range(case.steps):
            sim.step()
        elapsed = time.perf_counter() - t0
        cell_steps = n_cells * case.steps
        return {
            "cells_per_s": cell_steps / elapsed,
            "us_per_cell": elapsed / cell_steps * 1e6,
            "wall_s": elapsed,
            "phases_s": {k: round(v, 6) for k, v in sim.timer.totals.items()},
        }


def run_case(case: BenchCase, *, warmup: int = 2) -> Dict[str, Any]:
    """Measure both engines on one case; returns a result record."""
    blocked = _time_engine(case, "blocked", warmup)
    batched = _time_engine(case, "batched", warmup)
    return {
        "label": case.label,
        "ndim": case.ndim,
        "m": case.m,
        "n_blocks": case.n_root ** case.ndim,
        "steps": case.steps,
        "blocked": blocked,
        "batched": batched,
        "speedup": batched["cells_per_s"] / blocked["cells_per_s"],
    }


def run_cases(
    cases: Sequence[BenchCase] = DEFAULT_CASES, *, warmup: int = 2
) -> List[Dict[str, Any]]:
    """Measure every case (see :func:`run_case`)."""
    return [run_case(c, warmup=warmup) for c in cases]


def check_equivalence(
    case: BenchCase, *, steps: Optional[int] = None
) -> bool:
    """True iff both engines produce bit-identical state on ``case``."""
    n_steps = case.steps if steps is None else steps
    sims = {}
    for engine in ("blocked", "batched"):
        with build_uniform_mhd(case.ndim, case.m, case.n_root, engine) as sim:
            for _ in range(n_steps):
                sim.step()
            sims[engine] = sim
    a, b = sims["blocked"], sims["batched"]
    if sorted(a.forest.blocks) != sorted(b.forest.blocks):
        return False
    if [r.dt for r in a.history] != [r.dt for r in b.history]:
        return False
    return all(
        np.array_equal(a.forest.blocks[bid].interior, b.forest.blocks[bid].interior)
        for bid in a.forest.blocks
    )
