"""Static phase-effect analyzer: arena regions a function reads/writes.

The runtime :class:`~repro.analysis.races.RaceDetector` witnesses the
exchange orderings that *happen to occur*; this module is its static
counterpart.  An AST/dataflow pass infers, per function, which arena
regions (``interior`` / ``ghost`` / ``mirror`` / ``staging``) the body
can touch, and checks the inferred effect set of every
``@phase_effect("...")``-annotated function against that phase's
declared contract in :data:`repro.analysis.protocol.PROTOCOL`.

A write to a region the phase's contract forbids — the classic seeded
bug being a ghost write inside the ``step`` phase, which the exchange
schedule would silently overwrite on some ranks and not others — is
lint rule **REPRO106**.

Inference is deliberately conservative-by-table rather than fully
general dataflow: the repo's arena regions are only reachable through
a small, stable vocabulary (``.interior``, ``.data``, ``.view()``,
``.ghost_region()``, ``.mirror_view()``, the worker's staging
attributes, and a handful of kernel entry points), so a name-driven
classification plus single-assignment local aliasing covers the real
access paths without false mazes.  Misses are safe: an effect the
analyzer cannot see simply goes unchecked; an effect it *does* see
must be inside the contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.protocol import PROTOCOL, PhaseSpec

__all__ = [
    "FunctionEffects",
    "infer_module_effects",
    "check_source",
    "effect_findings",
]


@dataclass(frozen=True)
class FunctionEffects:
    """Inferred region effects of one phase-annotated function."""

    module_path: str
    qualname: str
    line: int
    phase: str
    reads: FrozenSet[str]
    writes: FrozenSet[str]

    def violations(self) -> List[Tuple[str, str]]:
        """(kind, region) pairs outside the phase contract."""
        contract: PhaseSpec = PROTOCOL.phase(self.phase)
        out: List[Tuple[str, str]] = []
        for region in sorted(self.reads - contract.reads):
            out.append(("read", region))
        for region in sorted(self.writes - contract.writes):
            out.append(("write", region))
        return out


#: Attribute names that *are* a region when accessed on any object.
_ATTR_REGION: Dict[str, FrozenSet[str]] = {
    "interior": frozenset({"interior"}),
    "data": frozenset({"interior", "ghost"}),
    "saved": frozenset({"staging"}),
    "_payloads": frozenset({"staging"}),
    "_payload_crcs": frozenset({"staging"}),
}

#: Method names whose *result* aliases a region (local-variable
#: assignment from these propagates the region to the name).
_CALL_RESULT_REGION: Dict[str, FrozenSet[str]] = {
    "ghost_region": frozenset({"ghost"}),
    "mirror_view": frozenset({"mirror"}),
    "copy_view": frozenset({"mirror"}),
    "gather_bordered": frozenset({"staging"}),
}

#: ``x.view(box)`` reads interior when loaded, targets ghost when the
#: subscript is stored through — handled specially in the visitor.
_VIEW_METHODS = ("view",)

#: Known call side effects: function/method name -> (reads, writes).
#: ``arg0`` entries additionally read/write the region aliased by the
#: first argument (resolved through the local environment).
_CALL_EFFECTS: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {
    "gather_bordered": (frozenset({"interior", "ghost"}), frozenset()),
    "restriction_contribution": (frozenset({"interior"}), frozenset()),
    "apply_restrictions": (frozenset(), frozenset({"ghost"})),
    "remirror_block": (frozenset({"interior"}), frozenset({"mirror"})),
    "copy_is_valid": (frozenset({"mirror"}), frozenset()),
    "adopt_block": (frozenset(), frozenset({"interior"})),
}

#: Methods on the scheme object (``*.scheme.step(data, ...)``) that
#: mutate the interior of the array they are handed.
_SCHEME_WRITERS = ("step",)


def _scheme_call(node: ast.Call) -> bool:
    """True for ``<...>.scheme.step(...)`` / ``scheme.step(...)``."""
    fn = node.func
    if not isinstance(fn, ast.Attribute):
        return False
    base = fn.value
    return (
        isinstance(base, ast.Attribute) and base.attr == "scheme"
    ) or (isinstance(base, ast.Name) and base.id == "scheme")


class _FunctionEffectVisitor(ast.NodeVisitor):
    """Collect region reads/writes inside one function body."""

    def __init__(self) -> None:
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        #: local name -> regions it aliases (single forward pass).
        self.env: Dict[str, FrozenSet[str]] = {}
        #: ids of nodes consumed as write bases (skip as loads).
        self._consumed: Set[int] = set()

    # -- region classification of expressions --------------------------

    def _regions_of(self, node: ast.AST) -> FrozenSet[str]:
        """Regions an expression aliases (not a read by itself)."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            return _ATTR_REGION.get(node.attr, frozenset())
        if isinstance(node, ast.Subscript):
            return self._regions_of(node.value)
        if isinstance(node, ast.Call):
            fn = node.func
            name = fn.attr if isinstance(fn, ast.Attribute) else (
                fn.id if isinstance(fn, ast.Name) else None
            )
            if name in _CALL_RESULT_REGION:
                return _CALL_RESULT_REGION[name]
            if name in _VIEW_METHODS:
                return frozenset({"interior"})
            if name == "copy" and isinstance(fn, ast.Attribute):
                return self._regions_of(fn.value)
        return frozenset()

    def _write_target_regions(self, node: ast.AST) -> FrozenSet[str]:
        """Regions written when ``node`` is a store target; marks the
        base nodes consumed so the load pass does not double-count."""
        base = node
        while isinstance(base, ast.Subscript):
            base = base.value
        self._consumed.add(id(base))
        if isinstance(base, ast.Call) and isinstance(
            base.func, ast.Attribute
        ) and base.func.attr in _VIEW_METHODS:
            # subscript-store through .view() lands in ghost storage
            # (the exchange's destination views)
            return frozenset({"ghost"})
        return self._regions_of(base)

    # -- statements -----------------------------------------------------

    def _handle_store(self, target: ast.AST, value_regions: FrozenSet[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_store(elt, value_regions)
            return
        if isinstance(target, ast.Name):
            # plain rebinding: the name now aliases the value's regions
            self.env[target.id] = value_regions
            return
        regions = self._write_target_regions(target)
        self.writes |= regions

    def visit_Assign(self, node: ast.Assign) -> None:
        value_regions = self._regions_of(node.value)
        for target in node.targets:
            self._handle_store(target, value_regions)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_store(node.target, self._regions_of(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        regions = self._write_target_regions(node.target)
        self.writes |= regions
        self.reads |= regions
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._handle_store(node.target, self._regions_of(node.iter))
        self.generic_visit(node)

    # -- loads ----------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            id(node) not in self._consumed
            and isinstance(node.ctx, ast.Load)
            and node.attr in _ATTR_REGION
        ):
            self.reads |= _ATTR_REGION[node.attr]
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None
        )
        if name is not None:
            if name in _CALL_EFFECTS:
                reads, writes = _CALL_EFFECTS[name]
                self.reads |= reads
                self.writes |= writes
            if name in _CALL_RESULT_REGION and id(node) not in self._consumed:
                # producing a view of a region reads nothing yet; only
                # gather_bordered (in _CALL_EFFECTS) actually copies.
                pass
            if name in _VIEW_METHODS and id(node) not in self._consumed:
                self.reads |= frozenset({"interior"})
            if name in _SCHEME_WRITERS and _scheme_call(node):
                self.writes |= frozenset({"interior"})
            if node.args:
                arg_regions = self._regions_of(node.args[0])
                if name == "apply_bitflip":
                    self.writes |= arg_regions
                elif name in ("content_crc", "crc_bytes", "prolong_bordered"):
                    self.reads |= arg_regions
        self.generic_visit(node)


def _phase_of(node: ast.AST) -> Optional[str]:
    """The phase named by a ``@phase_effect("...")`` decorator, if any."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call) or not dec.args:
            continue
        fn = dec.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None
        )
        if name == "phase_effect":
            arg = dec.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
    return None


def infer_module_effects(
    source: str, module_path: str
) -> List[FunctionEffects]:
    """Effects of every phase-annotated function in ``source``.

    Raises ``SyntaxError`` on unparseable input (callers that lint
    already guard; ``repro check`` wants the hard failure).
    """
    tree = ast.parse(source)
    out: List[FunctionEffects] = []

    def walk(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                inner = f"{scope}.{child.name}" if scope else child.name
                phase = _phase_of(child)
                if phase is not None:
                    visitor = _FunctionEffectVisitor()
                    for stmt in child.body:  # type: ignore[union-attr]
                        visitor.visit(stmt)
                    out.append(
                        FunctionEffects(
                            module_path=module_path,
                            qualname=inner,
                            line=child.lineno,
                            phase=phase,
                            reads=frozenset(visitor.reads),
                            writes=frozenset(visitor.writes),
                        )
                    )
                walk(child, inner)

    walk(tree, "")
    return out


def check_source(
    source: str, module_path: str
) -> List[Tuple[int, int, str, str]]:
    """REPRO106 findings for one module, as (line, col, code, message).

    Returned in the shape :func:`repro.analysis.lint.lint_source`
    merges, so phase-effect violations ride the normal lint pipeline
    (``# repro: noqa[REPRO106]`` works on the ``def`` line).
    """
    out: List[Tuple[int, int, str, str]] = []
    try:
        effects = infer_module_effects(source, module_path)
    except SyntaxError:
        return out  # the lint driver already reports REPRO000
    for fx in effects:
        known_phases = {p.op for p in PROTOCOL.phases}
        if fx.phase not in known_phases:
            out.append(
                (fx.line, 0, "REPRO106",
                 f"`{fx.qualname}` declares unknown protocol phase "
                 f"{fx.phase!r}")
            )
            continue
        for kind, region in fx.violations():
            out.append(
                (fx.line, 0, "REPRO106",
                 f"`{fx.qualname}` ({fx.phase} phase) {kind}s the "
                 f"{region} region, outside the phase's declared "
                 f"contract; move the access or fix the contract in "
                 f"repro.analysis.protocol")
            )
    return out


def effect_findings(
    sources: Dict[str, str]
) -> List[Tuple[str, FunctionEffects]]:
    """Inventory pass for ``repro check``: (module, effects) pairs for
    every annotated function across ``sources``."""
    out: List[Tuple[str, FunctionEffects]] = []
    for module_path in sorted(sources):
        for fx in infer_module_effects(sources[module_path], module_path):
            out.append((module_path, fx))
    return out
