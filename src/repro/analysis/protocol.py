"""Declarative, machine-readable spec of the supervisor<->worker protocol.

The process backend (PR 6/7) speaks a barrier-phase pipe protocol:
seq-numbered commands fan out from :class:`ProcessMachine`, CRC-tagged
replies come back from :func:`worker_main`, and a supervision ladder
(soft-timeout probe, heartbeat staleness, hard deadline, CRC retry
budget) turns every worker misbehavior into a classified
:class:`~repro.parallel.supervisor.RankDeath`.  That protocol lived
only in the implementation; this module states it as *data* so the
rest of the analysis layer can reason about it:

* :data:`PROTOCOL` — the spec itself: the phase catalogue with
  per-phase arena-region contracts, the step programs, the command and
  reply schemas, the fault taxonomy (scripted worker hooks and the
  failure kinds they are observed as), the supervision transitions,
  the self-healing ladder, and the registry of *message-constructor
  sites* — the only functions allowed to build or send wire messages.
* :func:`check_conformance` — an AST pass over the three protocol
  modules asserting the spec matches the code (ops, worker dispatch,
  constructor sites, reply CRC fields, phase-kind tables, hook
  actions, corruption regions), so the spec cannot silently rot.
* :func:`phase_effect` — a zero-cost decorator registering a function
  as the implementation of one protocol phase; the static analyzer in
  :mod:`repro.analysis.effects` checks each annotated body against the
  phase's declared region contract (lint rule REPRO106).

The spec is consumed by :mod:`repro.analysis.modelcheck` (bounded
explicit-state exploration of the protocol) and by the REPRO107 lint
rule (protocol message built outside a registered constructor).

Everything here is pure stdlib and import-light: the parallel modules
import only :func:`phase_effect` from this file, and conformance works
on source text, never on live objects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

__all__ = [
    "REGIONS",
    "PhaseSpec",
    "FaultSpec",
    "HealTransition",
    "ConstructorSite",
    "ProtocolSpec",
    "PROTOCOL",
    "PHASE_ATTR",
    "contract_for",
    "phase_effect",
    "ConformanceIssue",
    "check_conformance",
    "scoped_nodes",
    "protocol_sources",
]

#: Arena-region taxonomy shared with the scrubber and the heal ladder
#: (must match ``repro.resilience.scrub.CORRUPT_REGIONS``).
REGIONS: Tuple[str, ...] = ("interior", "ghost", "mirror", "staging")


@dataclass(frozen=True)
class PhaseSpec:
    """One protocol phase (a wire op, or a supervisor-side duty).

    ``reads``/``writes`` are the phase's arena-region contract: the
    regions its implementation may touch.  The static analyzer treats
    any inferred access outside the contract as REPRO106.
    """

    op: str
    kind: str  # "control" | "exchange" | "compute" | "service"
    injectable: bool = False  # replies may carry injected message faults
    carries_dt: bool = False
    may_carry_payload: bool = False
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class FaultSpec:
    """One scripted worker misbehavior and how the supervisor sees it."""

    action: str  # test-hook spelling ("kill" is delivered, not a hook)
    observed_as: str  # FailureKind, or "recovered" for absorbed faults
    detected_by: str  # which supervision mechanism catches it


@dataclass(frozen=True)
class HealTransition:
    """One rung of the self-healing SDC ladder (scrub -> repair)."""

    region: str
    source: str  # "mirror" | "exchange" | "rewind" | "checkpoint"
    requires_verified_mirror: bool
    escalates_to: Optional[str] = None


@dataclass(frozen=True)
class ConstructorSite:
    """A function allowed to build/send protocol wire messages."""

    module: str  # package-relative path, e.g. "repro/parallel/procworker.py"
    qualname: str  # dotted scope path without "<locals>"
    role: str  # "command" | "reply" | "probe" | "config" | "shutdown"


@dataclass(frozen=True)
class ProtocolSpec:
    """The whole protocol as data.

    The boolean flags at the bottom are the invariants the model
    checker interprets; mutating one (see
    ``repro.analysis.modelcheck.MUTATIONS``) produces the buggy
    protocol variant whose counterexample the checker must find.
    """

    phases: Tuple[PhaseSpec, ...]
    step_program_single: Tuple[str, ...]
    step_program_double: Tuple[str, ...]
    command_fields: Tuple[str, ...]
    optional_command_fields: Tuple[str, ...]
    reply_fields: Tuple[str, ...]
    worker_ops: Tuple[str, ...]  # dispatched by procworker._execute
    non_injectable_ops: Tuple[str, ...]
    failure_kinds: Tuple[str, ...]
    faults: Tuple[FaultSpec, ...]
    constructors: Tuple[ConstructorSite, ...]
    heal_ladder: Tuple[HealTransition, ...]
    regions: Tuple[str, ...] = REGIONS
    max_reply_retries_key: str = "max_retries"
    # -- model-checked invariants (mutation targets) -------------------
    probe_on_soft_timeout: bool = True
    guard_segment_free: bool = True
    verify_mirror_before_heal: bool = True
    check_reply_seq: bool = True
    gather_before_write: bool = True

    def ops(self) -> Tuple[str, ...]:
        return tuple(p.op for p in self.phases if p.kind != "service")

    def phase(self, op: str) -> PhaseSpec:
        for p in self.phases:
            if p.op == op:
                return p
        raise KeyError(f"unknown protocol phase {op!r}")

    def injectable_ops(self) -> Tuple[str, ...]:
        return tuple(p.op for p in self.phases if p.injectable)

    def constructor_qualnames(self, module: str) -> FrozenSet[str]:
        return frozenset(
            c.qualname for c in self.constructors if c.module == module
        )


#: Wire phases in canonical order, with their arena-region contracts.
#: The contracts mirror what the worker phase methods in
#: ``procworker._Worker`` actually do (see docs/static-analysis.md):
#: exch1 copies/restricts neighbor interiors into own ghosts;
#: exch2-gather stages bordered coarse sources (and CRC-tags them,
#: re-reading its own staging); exch2-write prolongs staged payloads
#: into ghosts (mutating staging only for scripted bitflips and the
#: end-of-phase reset); compute phases advance interiors, with the
#: predictor/corrector pair parking half-step snapshots in staging.
_WIRE_PHASES: Tuple[PhaseSpec, ...] = (
    PhaseSpec(
        "config", "control", may_carry_payload=True,
        writes=frozenset({"staging"}),
    ),
    PhaseSpec(
        "exch1", "exchange", injectable=True,
        reads=frozenset({"interior"}), writes=frozenset({"ghost"}),
    ),
    PhaseSpec(
        "exch2-gather", "exchange", injectable=True, may_carry_payload=True,
        reads=frozenset({"interior", "ghost", "staging"}),
        writes=frozenset({"staging"}),
    ),
    PhaseSpec(
        "exch2-write", "exchange", injectable=True, may_carry_payload=True,
        reads=frozenset({"staging"}),
        writes=frozenset({"ghost", "staging"}),
    ),
    PhaseSpec(
        "step", "compute", injectable=True, carries_dt=True,
        reads=frozenset({"interior", "ghost"}),
        writes=frozenset({"interior"}),
    ),
    PhaseSpec(
        "predictor", "compute", injectable=True, carries_dt=True,
        reads=frozenset({"interior", "ghost"}),
        writes=frozenset({"interior", "staging"}),
    ),
    PhaseSpec(
        "corrector", "compute", injectable=True, carries_dt=True,
        reads=frozenset({"interior", "ghost", "staging"}),
        writes=frozenset({"interior", "staging"}),
    ),
    PhaseSpec("resend", "control"),
    PhaseSpec("shutdown", "control"),
)

#: Supervisor-side duties that are not wire ops but still have region
#: contracts: the combined emulator exchange, partner-mirror refresh,
#: scrub verification (reads everything, writes nothing), and the heal
#: ladder (may touch anything while repairing).
_SERVICE_PHASES: Tuple[PhaseSpec, ...] = (
    PhaseSpec(
        "exchange", "service",
        reads=frozenset({"interior", "ghost", "staging"}),
        writes=frozenset({"ghost", "staging"}),
    ),
    PhaseSpec(
        "mirror-refresh", "service",
        reads=frozenset({"interior"}), writes=frozenset({"mirror"}),
    ),
    PhaseSpec(
        "scrub", "service",
        reads=frozenset(REGIONS), writes=frozenset(),
    ),
    PhaseSpec(
        "heal", "service",
        reads=frozenset(REGIONS), writes=frozenset(REGIONS),
    ),
)

PROTOCOL: ProtocolSpec = ProtocolSpec(
    phases=_WIRE_PHASES + _SERVICE_PHASES,
    step_program_single=("exch1", "exch2-gather", "exch2-write", "step"),
    step_program_double=(
        "exch1", "exch2-gather", "exch2-write", "predictor",
        "exch1", "exch2-gather", "exch2-write", "corrector",
    ),
    command_fields=("op", "seq", "step"),
    optional_command_fields=("dt", "payload"),
    reply_fields=("seq", "rank", "body", "crc"),
    worker_ops=(
        "config", "exch1", "exch2-gather", "exch2-write",
        "step", "predictor", "corrector", "shutdown",
    ),
    non_injectable_ops=("config", "shutdown"),
    failure_kinds=("clean-exit", "sigkill", "crash", "hang", "unreachable"),
    faults=(
        FaultSpec("kill", "sigkill", "exit-code"),
        FaultSpec("exit", "clean-exit", "exit-code"),
        FaultSpec("hang", "hang", "heartbeat"),
        FaultSpec("slow", "recovered", "soft-timeout-probe"),
        FaultSpec("mute", "recovered", "soft-timeout-probe"),
        FaultSpec("garble", "recovered", "crc-retry"),
        FaultSpec("garble-forever", "unreachable", "crc-retry-budget"),
    ),
    constructors=(
        ConstructorSite(
            "repro/parallel/procmachine.py",
            "ProcessMachine._spawn_rank", "config",
        ),
        ConstructorSite(
            "repro/parallel/procmachine.py",
            "ProcessMachine._phase", "command",
        ),
        ConstructorSite(
            "repro/parallel/procmachine.py",
            "ProcessMachine._await_reply.probe", "probe",
        ),
        ConstructorSite(
            "repro/parallel/procmachine.py",
            "ProcessMachine.close", "shutdown",
        ),
        ConstructorSite(
            "repro/parallel/procworker.py", "worker_main", "reply",
        ),
        ConstructorSite(
            "repro/parallel/procworker.py",
            "worker_main.send_reply", "reply",
        ),
    ),
    heal_ladder=(
        HealTransition("mirror", "exchange", False,
                       escalates_to="checkpoint"),
        HealTransition("ghost", "exchange", False),
        HealTransition("interior", "mirror", True,
                       escalates_to="checkpoint"),
        HealTransition("staging", "rewind", True,
                       escalates_to="checkpoint"),
    ),
)

#: Attribute set on functions by :func:`phase_effect`.
PHASE_ATTR: str = "__protocol_phase__"

_F = TypeVar("_F", bound=Callable[..., Any])


def phase_effect(op: str) -> Callable[[_F], _F]:
    """Register ``fn`` as the implementation of protocol phase ``op``.

    Zero runtime cost (sets one attribute).  The registration is read
    statically — by decorator name, via AST — so the phase-effect
    analyzer works without importing the annotated module; the runtime
    attribute exists so tooling can also ask a live function which
    phase it implements.
    """
    if op not in {p.op for p in PROTOCOL.phases}:
        raise ValueError(f"unknown protocol phase {op!r}")

    def mark(fn: _F) -> _F:
        setattr(fn, PHASE_ATTR, op)
        return fn

    return mark


def contract_for(op: str) -> PhaseSpec:
    """The region contract for a phase (wire op or service duty)."""
    return PROTOCOL.phase(op)


# ----------------------------------------------------------------------
# conformance: the spec must match the code, discovered by AST
# ----------------------------------------------------------------------

#: The modules that *are* the protocol implementation.
PROTOCOL_MODULES: Tuple[str, ...] = (
    "repro/parallel/supervisor.py",
    "repro/parallel/procworker.py",
    "repro/parallel/procmachine.py",
)


@dataclass(frozen=True)
class ConformanceIssue:
    """One spec/code divergence found by :func:`check_conformance`."""

    module: str
    line: int
    kind: str
    message: str

    def __str__(self) -> str:
        return f"{self.module}:{self.line}: [{self.kind}] {self.message}"


def scoped_nodes(tree: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield every node with the dotted qualname of its enclosing scope.

    Qualnames drop the ``<locals>`` marker: a function ``probe`` nested
    in ``ProcessMachine._await_reply`` is
    ``ProcessMachine._await_reply.probe``.
    """

    def walk(node: ast.AST, scope: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                inner = f"{scope}.{child.name}" if scope else child.name
                yield inner, child
                yield from walk(child, inner)
            else:
                yield scope, child
                yield from walk(child, scope)

    yield from walk(tree, "")


def protocol_sources(root: Optional[Path] = None) -> Dict[str, str]:
    """Source text of the protocol modules, keyed by package path."""
    base = _package_root(root)
    out: Dict[str, str] = {}
    for module in PROTOCOL_MODULES:
        rel = module.split("/", 1)[1]  # drop the leading "repro/"
        out[module] = (base / rel).read_text(encoding="utf-8")
    return out


def _package_root(root: Optional[Path]) -> Path:
    """The ``repro`` package directory (``root`` may be the repo root,
    a ``src`` dir, or the package itself)."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    for cand in (root, root / "repro", root / "src" / "repro"):
        if (cand / "parallel" / "procworker.py").is_file():
            return cand
    raise FileNotFoundError(
        f"cannot locate the repro package under {root}"
    )


def _dict_keys(node: ast.Dict) -> Set[str]:
    return {
        k.value for k in node.keys
        if isinstance(k, ast.Constant) and isinstance(k.value, str)
    }


def _dict_str_value(node: ast.Dict, key: str) -> Optional[str]:
    for k, v in zip(node.keys, node.values):
        if (
            isinstance(k, ast.Constant) and k.value == key
            and isinstance(v, ast.Constant) and isinstance(v.value, str)
        ):
            return v.value
    return None


def _compare_constants(node: ast.Compare, name: str) -> Set[str]:
    """String constants compared (``==``/``!=``/``in``) against ``name``."""
    out: Set[str] = set()
    is_name = (
        isinstance(node.left, ast.Name) and node.left.id == name
    ) or (
        isinstance(node.left, ast.Call)
        and isinstance(node.left.func, ast.Attribute)
        and node.left.func.attr == "get"
        and any(
            isinstance(a, ast.Constant) and a.value == name
            for a in node.left.args
        )
    )
    if not is_name:
        return out
    for comp in node.comparators:
        if isinstance(comp, ast.Constant) and isinstance(comp.value, str):
            out.add(comp.value)
        elif isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
            for elt in comp.elts:
                if isinstance(elt, ast.Constant) and isinstance(
                    elt.value, str
                ):
                    out.add(elt.value)
    return out


def _module_constant_tuple(tree: ast.AST, name: str) -> Optional[Set[str]]:
    """The string elements of a module-level tuple assignment."""
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if name in targets and isinstance(
                node.value, (ast.Tuple, ast.List)
            ):
                return {
                    e.value for e in node.value.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str)
                }
    return None


def check_conformance(
    root: Optional[Path] = None,
    sources: Optional[Dict[str, str]] = None,
    spec: ProtocolSpec = PROTOCOL,
) -> List[ConformanceIssue]:
    """Assert the spec matches the implementation; [] means conformant.

    ``sources`` overrides file loading (tests feed mutated source text
    through it).  Checks, all AST-driven so renames/moves are caught:

    1. every op the supervisor phases through, and every constant op in
       a constructed message, is a spec op — and every spec op appears;
    2. the worker dispatch (``_execute`` + the ``resend`` fast path)
       handles exactly the spec's worker ops;
    3. every ``*.send(...)`` call sits inside a spec-registered
       message-constructor function;
    4. every reply-shaped dict literal (seq/rank/body) carries ``crc``;
    5. the phase-kind tables (``_EXCHANGE_OPS``/``_COMPUTE_OPS``) match
       the spec's phase kinds, and the non-injectable tuple in
       ``_phase`` matches the spec;
    6. the ``FailureKind`` catalogue matches the spec's failure kinds;
    7. the worker's scripted hook actions cover the spec's fault
       actions (minus the delivered ``kill``).
    """
    if sources is None:
        sources = protocol_sources(root)
    issues: List[ConformanceIssue] = []

    def issue(module: str, line: int, kind: str, message: str) -> None:
        issues.append(ConformanceIssue(module, line, kind, message))

    trees = {m: ast.parse(src) for m, src in sources.items()}
    spec_ops = set(spec.ops())

    # --- collect from procmachine ------------------------------------
    mach = "repro/parallel/procmachine.py"
    mach_tree = trees[mach]
    code_ops: Set[str] = set()
    for scope, node in scoped_nodes(mach_tree):
        if isinstance(node, ast.Dict):
            op = _dict_str_value(node, "op")
            if op is not None:
                code_ops.add(op)
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in ("_phase", "_compute") and node.args:
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(
                    first.value, str
                ):
                    code_ops.add(first.value)
        if isinstance(node, ast.Assign) and scope.endswith("._phase"):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "injectable" in targets:
                found: Set[str] = set()
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str
                    ):
                        found.add(sub.value)
                if found != set(spec.non_injectable_ops):
                    issue(
                        mach, node.lineno, "injectable",
                        f"non-injectable ops in _phase are "
                        f"{sorted(found)}, spec says "
                        f"{sorted(spec.non_injectable_ops)}",
                    )
    for const, kind in (("_EXCHANGE_OPS", "exchange"),
                        ("_COMPUTE_OPS", "compute")):
        table = _module_constant_tuple(mach_tree, const)
        want = {p.op for p in spec.phases if p.kind == kind}
        if table is None:
            issue(mach, 1, "phase-kinds", f"{const} tuple not found")
        elif table != want:
            issue(
                mach, 1, "phase-kinds",
                f"{const} is {sorted(table)}, spec {kind} phases are "
                f"{sorted(want)}",
            )

    # --- collect from procworker -------------------------------------
    work = "repro/parallel/procworker.py"
    work_tree = trees[work]
    dispatch_ops: Set[str] = set()
    hook_actions: Set[str] = set()
    for scope, node in scoped_nodes(work_tree):
        if isinstance(node, ast.Compare):
            dispatch_ops |= _compare_constants(node, "op")
            hook_actions |= _compare_constants(node, "action")
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "startswith"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "action"
        ):
            for a in node.args:
                if isinstance(a, ast.Constant) and isinstance(a.value, str):
                    hook_actions.add(a.value.rstrip(":"))
    want_dispatch = set(spec.worker_ops) | {"resend"}
    if dispatch_ops != want_dispatch:
        issue(
            work, 1, "worker-ops",
            f"worker dispatches {sorted(dispatch_ops)}, spec expects "
            f"{sorted(want_dispatch)}",
        )
    code_ops |= dispatch_ops
    want_hooks = {f.action for f in spec.faults} - {"kill"}
    if not want_hooks <= hook_actions:
        issue(
            work, 1, "hook-actions",
            f"worker handles hook actions {sorted(hook_actions)}, spec "
            f"faults need {sorted(want_hooks)}",
        )

    # --- op catalogue closure ----------------------------------------
    if code_ops != spec_ops:
        extra = sorted(code_ops - spec_ops)
        missing = sorted(spec_ops - code_ops)
        detail = []
        if extra:
            detail.append(f"code uses unknown op(s) {extra}")
        if missing:
            detail.append(f"spec op(s) {missing} never appear in code")
        issue(mach, 1, "ops", "; ".join(detail))

    # --- constructor sites + reply CRC, across all modules -----------
    for module, tree in trees.items():
        registered = spec.constructor_qualnames(module)
        for scope, node in scoped_nodes(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
            ):
                if scope not in registered:
                    issue(
                        module, node.lineno, "constructor",
                        f"wire send in {scope or '<module>'!r} is not a "
                        "spec-registered message constructor",
                    )
            if isinstance(node, ast.Dict):
                keys = _dict_keys(node)
                if {"seq", "rank", "body"} <= keys and "crc" not in keys:
                    issue(
                        module, node.lineno, "reply-crc",
                        "reply constructed without a crc field",
                    )
        defined = {
            scope
            for scope, node in scoped_nodes(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for qual in sorted(registered - defined):
            issue(
                module, 1, "constructor",
                f"spec registers constructor {qual!r} but no such "
                "function exists",
            )

    # --- failure kinds (supervisor) ----------------------------------
    sup = "repro/parallel/supervisor.py"
    sup_tree = trees[sup]
    kinds: Set[str] = set()
    for node in ast.walk(sup_tree):
        if isinstance(node, ast.ClassDef) and node.name == "FailureKind":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Constant) and isinstance(
                    sub.value, str
                ):
                    kinds.add(sub.value)
    kinds = {k for k in kinds if not k[:1].isupper() and " " not in k}
    if kinds and kinds != set(spec.failure_kinds):
        issue(
            sup, 1, "failure-kinds",
            f"FailureKind catalogue {sorted(kinds)} != spec "
            f"{sorted(spec.failure_kinds)}",
        )
    if not kinds:
        issue(sup, 1, "failure-kinds", "FailureKind class not found")

    issues.sort(key=lambda i: (i.module, i.line, i.kind))
    return issues


def mutated(spec: ProtocolSpec = PROTOCOL, **flags: Any) -> ProtocolSpec:
    """A spec variant with invariant flags flipped (model-check seeds)."""
    return replace(spec, **flags)
