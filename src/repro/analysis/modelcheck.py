"""Explicit-state model checker for the supervisor/worker protocol.

The process backend's barrier-phase protocol
(:mod:`repro.parallel.procmachine` / :mod:`repro.parallel.procworker`)
is easy to get *mostly* right and hard to get *always* right: the bugs
that matter live in interleavings that the test suite hits once in a
thousand runs — a reply lost exactly when the probe is disabled, a rank
killed between the gather and the write half of an exchange, a stale
duplicate reply accepted for the wrong sequence number.  This module
explores those interleavings exhaustively under a small-world bound
(2–4 ranks, one or two steps, a bounded fault budget) against the
declarative :class:`~repro.analysis.protocol.ProtocolSpec`.

The model is deliberately small.  One abstract state tracks, per rank,
where the worker is in the command/reply cycle (``idle``, ``busy``,
``replied``, plus fault statuses), the last sequence number it
executed, whether its exchange staging payload has been gathered, and
whether its shared-memory segment is mapped; globally it tracks the
phase program counter, the supervisor's broadcast/collect pc, the
mirror-verified flag of the partner store, and the remaining fault
budget.  Transitions mirror the real supervision ladder: soft-timeout
probes resend cached replies, CRC-garbled replies are retried,
heartbeat timeouts detect hangs and deaths, dead ranks are reaped
(segment freed), healed from the partner mirror, and re-issued the
in-flight command.

Checked properties (each yields a replayable counterexample schedule):

``deadlock``
    no action is enabled before the phase program completes;
``lost-wakeup``
    a deadlock whose stuck rank holds an unsent reply — the classic
    consequence of dropping the soft-timeout probe;
``seq-divergence``
    a phase completes while some rank's last executed sequence number
    differs from the supervisor's — accepting a stale duplicate reply;
``double-free``
    a rank's shared segment is freed twice — reap racing respawn
    cleanup without the mapped-flag guard;
``mirror-unverified``
    a heal consumes a partner mirror that was never CRC-verified;
``staging-order``
    the write half of an exchange runs before its gather half filled
    the staging payload (the reordered-exch2 mutation).

Faults are injected at command-execution points of injectable phases
(``config``/``shutdown`` are excluded, matching the spec); the model
fault alphabet is ``kill``/``hang``/``mute``/``garble``/``stale``.
Partial-order reduction exploits that worker executions and reply
deliveries on distinct ranks commute: once the fault budget is
exhausted, only the lowest-ranked of the purely-commutative actions is
explored, while supervision actions (timeouts, reaps, heals) always
branch fully.

Counterexamples serialize to JSON (:class:`CounterexampleTrace`) and
replay two ways: in-model via :func:`replay_trace` (used by the tests
to pin the violation), and on the emulated backend via
``repro emulate --schedule`` (which maps the trace's fault actions to
the emulator's deterministic fault plan through
:func:`schedule_faults`).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.analysis.protocol import PROTOCOL, ProtocolSpec, mutated

__all__ = [
    "Action",
    "CounterexampleTrace",
    "EXPECTED_VIOLATION",
    "MODEL_FAULTS",
    "MUTATIONS",
    "ModelCheckResult",
    "check_protocol",
    "replay_trace",
    "schedule_faults",
]

#: Fault kinds the model injects at execution points.  ``kill``/``hang``
#: map onto the worker test hooks of the same name; ``mute`` covers the
#: hook's ``mute`` and ``slow`` spellings (reply missing at the soft
#: timeout); ``garble`` is a transient CRC failure; ``stale`` models a
#: delayed duplicate reply carrying an old sequence number.
MODEL_FAULTS: Tuple[str, ...] = ("kill", "hang", "mute", "garble", "stale")

#: Named single-flag spec mutations, each seeding one protocol bug the
#: checker must find.  Keys are accepted by ``repro check --mutate``.
MUTATIONS: Mapping[str, Mapping[str, bool]] = {
    "reorder-exch2": {"gather_before_write": False},
    "skip-mirror-verify": {"verify_mirror_before_heal": False},
    "drop-probe": {"probe_on_soft_timeout": False},
    "unguarded-free": {"guard_segment_free": False},
    "skip-seq-check": {"check_reply_seq": False},
}

#: Violation kind each mutation is expected to surface.
EXPECTED_VIOLATION: Mapping[str, str] = {
    "reorder-exch2": "staging-order",
    "skip-mirror-verify": "mirror-unverified",
    "drop-probe": "lost-wakeup",
    "unguarded-free": "double-free",
    "skip-seq-check": "seq-divergence",
}

# Worker statuses.  "busy" holds an unexecuted command; "muted" executed
# but lost its reply; "stale" holds a delayed duplicate reply (command
# unexecuted); "garbled" holds a CRC-corrupt reply; "detected" is a dead
# rank the heartbeat has noticed; "reaped" had its segment freed and
# awaits healing.
_IDLE = "idle"
_BUSY = "busy"
_REPLIED = "replied"
_MUTED = "muted"
_GARBLED = "garbled"
_STALE = "stale"
_HUNG = "hung"
_DEAD = "dead"
_DETECTED = "detected"
_REAPED = "reaped"

#: One scheduler action: a tuple of strings/ints, first element the verb.
Action = Tuple[Any, ...]

# State tuple layout (hashable, canonical):
#   (phase_idx, sup_pc, seq, workers, collected, mirror_verified, faults_left)
# with workers = tuple of (status, last_seq, staging_filled, seg_mapped).
_State = Tuple[
    int, str, int, Tuple[Tuple[str, int, bool, bool], ...],
    FrozenSet[int], bool, int,
]


def _build_program(
    spec: ProtocolSpec, steps: int, scheme: str
) -> Tuple[Tuple[str, int], ...]:
    """The bounded phase program: ``config`` then ``steps`` step bodies.

    Each entry is ``(op, step_index)``.  The ``gather_before_write``
    mutation reorders the exchange halves here, exactly as a
    wrongly-sequenced ``_phase`` call chain would.
    """
    body = list(
        spec.step_program_double if scheme == "double"
        else spec.step_program_single
    )
    if not spec.gather_before_write:
        swapped: List[str] = []
        i = 0
        while i < len(body):
            if (
                i + 1 < len(body)
                and body[i] == "exch2-gather"
                and body[i + 1] == "exch2-write"
            ):
                swapped += [body[i + 1], body[i]]
                i += 2
            else:
                swapped.append(body[i])
                i += 1
        body = swapped
    program: List[Tuple[str, int]] = [("config", 0)]
    for s in range(steps):
        program.extend((op, s) for op in body)
    return tuple(program)


def _initial(ranks: int, max_faults: int) -> _State:
    workers = tuple((_IDLE, -1, False, True) for _ in range(ranks))
    return (0, "bcast", 0, workers, frozenset(), False, max_faults)


def _done(state: _State, program: Tuple[Tuple[str, int], ...]) -> bool:
    return state[0] >= len(program)


def _enabled(
    state: _State,
    spec: ProtocolSpec,
    program: Tuple[Tuple[str, int], ...],
) -> List[Action]:
    phase_idx, sup, _seq, workers, _collected, verified, budget = state
    if phase_idx >= len(program):
        return []
    op, _step = program[phase_idx]
    injectable = spec.phase(op).injectable
    actions: List[Action] = []
    if sup == "bcast":
        return [("bcast",)]
    any_reaped = any(w[0] == _REAPED for w in workers)
    for r, (status, _last, _staging, _mapped) in enumerate(workers):
        if status == _BUSY:
            actions.append(("exec", r))
            if injectable and budget > 0:
                actions.extend(("fault", r, kind) for kind in MODEL_FAULTS)
        elif status in (_REPLIED, _GARBLED, _STALE):
            actions.append(("deliver", r))
        elif status == _MUTED:
            if spec.probe_on_soft_timeout:
                actions.append(("timeout", r))
        elif status in (_HUNG, _DEAD):
            actions.append(("timeout", r))
        elif status == _DETECTED:
            actions.append(("reap", r))
        elif status == _REAPED:
            if not spec.guard_segment_free:
                actions.append(("reap", r))
            if verified or not spec.verify_mirror_before_heal:
                actions.append(("heal", r))
    if any_reaped and not verified:
        actions.append(("verify-mirror",))
    return actions


def _apply(
    state: _State,
    action: Action,
    spec: ProtocolSpec,
    program: Tuple[Tuple[str, int], ...],
) -> Tuple[_State, Optional[Tuple[str, str]]]:
    """Apply ``action``; return the successor and any violation found."""
    phase_idx, sup, seq, workers, collected, verified, budget = state
    ws = [list(w) for w in workers]
    coll = set(collected)
    op, _step = program[phase_idx]
    verb = action[0]
    violation: Optional[Tuple[str, str]] = None

    if verb == "bcast":
        seq += 1
        sup = "collect"
        for w in ws:
            w[0] = _BUSY
        coll = set()
    elif verb == "exec":
        r = int(action[1])
        ws[r][0] = _REPLIED
        ws[r][1] = seq
        if op == "exch2-gather":
            ws[r][2] = True
        elif op == "exch2-write":
            if not ws[r][2]:
                violation = (
                    "staging-order",
                    f"rank {r} ran exch2-write at seq {seq} before "
                    "exch2-gather filled its staging payload",
                )
            ws[r][2] = False
    elif verb == "fault":
        r, kind = int(action[1]), str(action[2])
        budget -= 1
        if kind == "kill":
            ws[r][0] = _DEAD
        elif kind == "hang":
            ws[r][0] = _HUNG
        elif kind == "mute":
            # Executed, reply lost in the pipe.
            ws[r][0] = _MUTED
            ws[r][1] = seq
            if op == "exch2-gather":
                ws[r][2] = True
            elif op == "exch2-write":
                ws[r][2] = False
        elif kind == "garble":
            ws[r][0] = _GARBLED
            ws[r][1] = seq
            if op == "exch2-gather":
                ws[r][2] = True
            elif op == "exch2-write":
                ws[r][2] = False
        elif kind == "stale":
            # A delayed duplicate reply arrives; the real command is
            # still unexecuted in the worker's queue.
            ws[r][0] = _STALE
    elif verb == "deliver":
        r = int(action[1])
        status = ws[r][0]
        if status == _GARBLED:
            # CRC check fails; the probe resends the cached reply and
            # the transient corruption does not recur.
            ws[r][0] = _REPLIED
        elif status == _STALE:
            if spec.check_reply_seq:
                # Duplicate discarded; the genuine command proceeds.
                ws[r][0] = _BUSY
            else:
                ws[r][0] = _IDLE
                coll.add(r)
        else:
            ws[r][0] = _IDLE
            coll.add(r)
    elif verb == "timeout":
        r = int(action[1])
        status = ws[r][0]
        if status == _MUTED:
            # Soft-timeout probe: worker re-sends its cached reply.
            ws[r][0] = _REPLIED
        else:
            # Heartbeat/hard timeout: hang is killed, death observed.
            ws[r][0] = _DETECTED
            verified = False
    elif verb == "reap":
        r = int(action[1])
        if not ws[r][3]:
            violation = (
                "double-free",
                f"rank {r}'s shared segment freed twice during cleanup",
            )
        ws[r][3] = False
        ws[r][0] = _REAPED
    elif verb == "verify-mirror":
        verified = True
    elif verb == "heal":
        r = int(action[1])
        if not verified:
            violation = (
                "mirror-unverified",
                f"rank {r} healed from a partner mirror that was never "
                "CRC-verified",
            )
        # Respawned with a remapped segment and the in-flight command
        # re-issued; supervisor-side staging payloads survive the death.
        ws[r][0] = _BUSY
        ws[r][3] = True

    # Inline, deterministic phase completion: once every rank's reply is
    # collected the supervisor checks sequence agreement and advances.
    if (
        violation is None
        and sup == "collect"
        and len(coll) == len(ws)
        and all(w[0] == _IDLE for w in ws)
    ):
        diverged = [r for r, w in enumerate(ws) if w[1] != seq]
        if diverged:
            violation = (
                "seq-divergence",
                f"phase '{op}' completed at seq {seq} but rank(s) "
                f"{diverged} last executed a different sequence number",
            )
        else:
            phase_idx += 1
            sup = "bcast"
            coll = set()

    new_state: _State = (
        phase_idx, sup, seq,
        tuple((w[0], w[1], bool(w[2]), bool(w[3])) for w in ws),
        frozenset(coll), verified, budget,
    )
    return new_state, violation


def _commutative(action: Action) -> bool:
    """Whether interleavings of this action across ranks are confluent."""
    return action[0] in ("exec", "deliver")


@dataclass(frozen=True)
class CounterexampleTrace:
    """A replayable schedule driving the model into a violation."""

    kind: str  #: violation kind, e.g. "double-free"
    message: str  #: human-readable diagnosis
    ranks: int
    steps: int
    max_faults: int
    scheme: str
    mutation: Optional[str]  #: MUTATIONS key the spec was seeded with
    actions: Tuple[Tuple[Any, ...], ...]  #: scheduler actions, in order
    phases: Tuple[str, ...] = ()  #: phase op active at each action

    def to_json(self) -> str:
        payload = {
            "kind": self.kind,
            "message": self.message,
            "ranks": self.ranks,
            "steps": self.steps,
            "max_faults": self.max_faults,
            "scheme": self.scheme,
            "mutation": self.mutation,
            "actions": [list(a) for a in self.actions],
            "phases": list(self.phases),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CounterexampleTrace":
        raw = json.loads(text)
        return cls(
            kind=str(raw["kind"]),
            message=str(raw["message"]),
            ranks=int(raw["ranks"]),
            steps=int(raw["steps"]),
            max_faults=int(raw["max_faults"]),
            scheme=str(raw.get("scheme", "single")),
            mutation=raw.get("mutation"),
            actions=tuple(tuple(a) for a in raw["actions"]),
            phases=tuple(str(p) for p in raw.get("phases", ())),
        )


@dataclass(frozen=True)
class ModelCheckResult:
    """Outcome of one bounded exploration."""

    ok: bool
    states: int  #: distinct states visited
    transitions: int  #: transitions taken
    completed: int  #: accepting (program-finished) states reached
    counterexample: Optional[CounterexampleTrace] = None
    truncated: bool = False  #: hit the max_states bound
    bounds: Dict[str, int] = field(default_factory=dict)


def check_protocol(
    spec: ProtocolSpec = PROTOCOL,
    *,
    ranks: int = 2,
    steps: int = 1,
    max_faults: int = 1,
    scheme: str = "single",
    por: bool = True,
    max_states: int = 500_000,
    mutation: Optional[str] = None,
) -> ModelCheckResult:
    """Breadth-first exploration of the bounded protocol model.

    Returns on the first violation with a shortest counterexample
    schedule (BFS order), or after exhausting the state space.  ``por``
    enables the ample-set reduction described in the module docstring;
    disabling it explores the full interleaving set (used by the tests
    to confirm the reduction misses nothing on the seeded mutations).
    """
    if not 2 <= ranks <= 4:
        raise ValueError("small-world bound requires 2 <= ranks <= 4")
    if not 1 <= steps <= 3:
        raise ValueError("small-world bound requires 1 <= steps <= 3")
    if not 0 <= max_faults <= 3:
        raise ValueError("small-world bound requires 0 <= max_faults <= 3")
    if scheme not in ("single", "double"):
        raise ValueError(f"unknown scheme {scheme!r}")
    if mutation is not None:
        spec = mutated(spec, **MUTATIONS[mutation])
    program = _build_program(spec, steps, scheme)
    init = _initial(ranks, max_faults)
    # parent map: state -> (predecessor, action, phase-op) for trace
    # reconstruction; BFS guarantees shortest counterexamples.
    parents: Dict[_State, Optional[Tuple[_State, Action, str]]] = {init: None}
    queue: deque[_State] = deque([init])
    transitions = 0
    completed = 0
    truncated = False

    def _trace(
        state: _State, last: Optional[Action], kind: str, message: str
    ) -> CounterexampleTrace:
        path: List[Tuple[Action, str]] = []
        if last is not None:
            path.append((last, program[state[0]][0]))
        cur = state
        while True:
            entry = parents[cur]
            if entry is None:
                break
            cur, act, op = entry
            path.append((act, op))
        path.reverse()
        return CounterexampleTrace(
            kind=kind, message=message, ranks=ranks, steps=steps,
            max_faults=max_faults, scheme=scheme, mutation=mutation,
            actions=tuple(a for a, _ in path),
            phases=tuple(op for _, op in path),
        )

    while queue:
        state = queue.popleft()
        if _done(state, program):
            completed += 1
            continue
        actions = _enabled(state, spec, program)
        if not actions:
            stuck_muted = any(w[0] == _MUTED for w in state[3])
            kind = "lost-wakeup" if stuck_muted else "deadlock"
            message = (
                "no action enabled before program completion"
                + (
                    "; a worker holds an unsent reply and no probe "
                    "will resend it"
                    if stuck_muted else ""
                )
            )
            # Deadlock is a property of the state itself: the trace is
            # the schedule that reaches it, with no final action.
            return ModelCheckResult(
                ok=False, states=len(parents), transitions=transitions,
                completed=completed,
                counterexample=_trace(state, None, kind, message),
            )
        if por and state[6] == 0:
            commuting = [a for a in actions if _commutative(a)]
            others = [a for a in actions if not _commutative(a)]
            if commuting and not others:
                actions = [min(commuting)]
        op = program[state[0]][0]
        for action in actions:
            succ, violation = _apply(state, action, spec, program)
            transitions += 1
            if violation is not None:
                kind, message = violation
                return ModelCheckResult(
                    ok=False, states=len(parents), transitions=transitions,
                    completed=completed,
                    counterexample=_trace(state, action, kind, message),
                )
            if succ not in parents:
                if len(parents) >= max_states:
                    truncated = True
                    continue
                parents[succ] = (state, action, op)
                queue.append(succ)
    return ModelCheckResult(
        ok=True, states=len(parents), transitions=transitions,
        completed=completed, truncated=truncated,
        bounds={"ranks": ranks, "steps": steps, "max_faults": max_faults},
    )


def replay_trace(
    trace: CounterexampleTrace, spec: ProtocolSpec = PROTOCOL
) -> Optional[Tuple[str, str]]:
    """Re-run a counterexample schedule through the model transition
    function; returns the violation it reproduces (``None`` if the
    schedule completes cleanly — i.e. the trace no longer reproduces).

    Deadlock-class traces end at the stuck state rather than at a
    violating transition, so after the last action the enabled-set is
    checked the same way the explorer checks it.
    """
    if trace.mutation is not None:
        spec = mutated(spec, **MUTATIONS[trace.mutation])
    program = _build_program(spec, trace.steps, trace.scheme)
    state = _initial(trace.ranks, trace.max_faults)
    for action in trace.actions:
        enabled = _enabled(state, spec, program)
        if tuple(action) not in [tuple(a) for a in enabled]:
            raise ValueError(
                f"trace diverged: action {action!r} not enabled"
            )
        state, violation = _apply(state, tuple(action), spec, program)
        if violation is not None:
            return violation
    if not _done(state, program) and not _enabled(state, spec, program):
        stuck_muted = any(w[0] == _MUTED for w in state[3])
        kind = "lost-wakeup" if stuck_muted else "deadlock"
        return kind, "no action enabled before program completion"
    return None


def schedule_faults(
    trace: CounterexampleTrace, spec: ProtocolSpec = PROTOCOL
) -> List[Dict[str, Any]]:
    """Extract the fault injections from a counterexample schedule.

    Returns one entry per ``fault`` action with the step index, rank,
    fault kind, and the phase op it interrupted — the shape
    ``repro emulate --schedule`` maps onto the emulator's deterministic
    :class:`~repro.resilience.faults.FaultPlan`.  Step indices are
    exact: the trace is replayed through the model so each fault reads
    the step of the phase-program entry it fired under.
    """
    if trace.mutation is not None:
        spec = mutated(spec, **MUTATIONS[trace.mutation])
    program = _build_program(spec, trace.steps, trace.scheme)
    state = _initial(trace.ranks, trace.max_faults)
    faults: List[Dict[str, Any]] = []
    for action in trace.actions:
        act = tuple(action)
        if act and act[0] == "fault" and state[0] < len(program):
            op, step = program[state[0]]
            faults.append({
                "step": step,
                "rank": int(act[1]),
                "action": str(act[2]),
                "phase": op,
            })
        state, violation = _apply(state, act, spec, program)
        if violation is not None:
            break
    return faults
