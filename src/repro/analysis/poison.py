"""Ghost-poison sanitizer: prove every consumed ghost cell was filled.

The adaptive-block contract is that a stencil kernel may read its
block's ghost layers only *after* an exchange (plus physical BC) has
filled them.  A violation — an unfilled boundary slab, a forgotten
corner region, an exchange skipped after adaptation — does not crash:
it silently feeds stale or garbage values into the flux computation.
This module makes that class of bug loud.

Mechanism (the classic shadow-memory trick, specialized to block AMR):

1. every ghost cell is filled with a **poison** value — a signaling
   NaN whose 64-bit pattern (:data:`POISON_BITS`) cannot occur in real
   data — at allocation, after every adapt, and immediately before
   every exchange;
2. after the exchange + boundary conditions, the exact region the
   finite-volume kernels read (the face slabs ``depth`` layers deep,
   transverse-interior extent — corner/edge ghosts are never consumed
   by the dimension-wise stencils) is verified poison-free;
3. after each kernel stage, interiors are verified NaN-free, catching
   poison that leaked through any unanticipated read path.

Verification is bit-exact: a cell is poisoned iff its bits equal
:data:`POISON_BITS`, so legitimate NaNs produced by the physics are
attributed to step 3 (contamination), never step 2 (unfilled ghosts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.block import Block

__all__ = [
    "POISON_BITS",
    "PoisonError",
    "PoisonSite",
    "GhostSanitizer",
    "poison_value",
    "poisoned_mask",
    "poison_ghosts",
    "poison_forest",
    "check_stencil_ghosts",
    "check_interior_clean",
]

#: Bit pattern of the poison value: sign 0, exponent all-ones, quiet bit
#: clear, non-zero payload — a *signaling* NaN.  The payload spells the
#: sanitizer out in hex so a stray poisoned value is recognizable in a
#: debugger even after it was copied around.
POISON_BITS = np.uint64(0x7FF4_DEAD_BEEF_0BAD)


def poison_value() -> float:
    """The poison as a float64 scalar (a signaling NaN)."""
    return float(np.uint64(POISON_BITS).view(np.float64))


def poisoned_mask(arr: np.ndarray) -> np.ndarray:
    """Boolean mask of cells holding the exact poison bit pattern.

    Bit-exact on purpose: arithmetic involving a poisoned value
    produces an ordinary quiet NaN, which this mask does *not* match —
    distinguishing "this cell was never filled" from "a computation
    downstream went bad".
    """
    if arr.dtype != np.float64:
        return np.zeros(arr.shape, dtype=bool)
    # ``view`` needs a contiguous buffer; sliced views of a padded
    # block array generally are not, so go through a copy.
    bits = np.ascontiguousarray(arr).view(np.uint64)
    return (bits == POISON_BITS).reshape(arr.shape)


@dataclass(frozen=True)
class PoisonSite:
    """One region in which poisoned values were found."""

    block: object  #: offending BlockID
    where: str  #: "ghost" (unfilled ghost read region) or "interior"
    face: Optional[int]  #: face index of the offending slab (ghost only)
    n_cells: int  #: poisoned (ghost) or non-finite (interior) cell count
    variables: Tuple[int, ...]  #: state-variable indices affected

    def __str__(self) -> str:
        at = f" face {self.face}" if self.face is not None else ""
        return (
            f"[{self.where}]{at} of {self.block}: {self.n_cells} cell(s), "
            f"variable(s) {list(self.variables)}"
        )


class PoisonError(RuntimeError):
    """A poisoned (never-filled) ghost value was about to be consumed,
    or non-finite data leaked into block interiors."""

    def __init__(self, context: str, sites: List[PoisonSite]) -> None:
        self.context = context
        self.sites = list(sites)
        lines = "\n".join(f"  - {s}" for s in self.sites)
        super().__init__(
            f"ghost sanitizer: {context}: {len(self.sites)} site(s)\n{lines}"
        )


def _ghost_mask(block: "Block") -> np.ndarray:
    """Boolean mask (spatial shape) selecting the ghost cells."""
    mask = np.ones(block.padded_shape, dtype=bool)
    mask[block.interior_slices] = False
    return mask


def poison_ghosts(block: "Block") -> int:
    """Fill every ghost cell of one block with poison; return the count."""
    mask = _ghost_mask(block)
    block.data[:, mask] = poison_value()
    return int(mask.sum()) * block.nvar


def poison_forest(blocks: Iterable["Block"]) -> int:
    """Poison the ghost layers of every block in an iterable (a
    :class:`~repro.core.forest.BlockForest` iterates its blocks, and the
    emulator passes each rank's private blocks)."""
    total = 0
    for block in blocks:
        total += poison_ghosts(block)
    return total


def _face_read_slices(
    block: "Block", face: int, depth: int
) -> Tuple[slice, ...]:
    """Padded-array slices of the ghost slab a stencil reads across
    ``face``: ``depth`` layers deep, interior extent transversally
    (corner/edge ghosts are never consumed by the dimension-wise
    kernels — see :meth:`repro.solvers.scheme.FVScheme.face_states`)."""
    g = block.n_ghost
    axis, side = divmod(face, 2)
    sl = list(block.interior_slices)
    if side == 0:
        sl[axis] = slice(g - depth, g)
    else:
        sl[axis] = slice(g + block.m[axis], g + block.m[axis] + depth)
    return tuple(sl)


def check_stencil_ghosts(
    blocks: Iterable["Block"], depth: Optional[int] = None
) -> List[PoisonSite]:
    """Find poisoned cells in the ghost regions stencil kernels read.

    ``depth`` is the stencil's ghost reach per side (default: each
    block's full ghost width).  Returns one :class:`PoisonSite` per
    (block, face) slab containing poison; an empty list means every
    ghost value the next kernel invocation can consume was filled by
    the exchange / boundary conditions.
    """
    sites: List[PoisonSite] = []
    for block in blocks:
        d = block.n_ghost if depth is None else min(depth, block.n_ghost)
        for face in range(2 * block.ndim):
            region = block.data[(slice(None),) + _face_read_slices(block, face, d)]
            mask = poisoned_mask(region)
            if mask.any():
                bad_vars = tuple(
                    int(v) for v in np.nonzero(mask.any(axis=tuple(range(1, mask.ndim))))[0]
                )
                sites.append(
                    PoisonSite(
                        block=block.id,
                        where="ghost",
                        face=face,
                        n_cells=int(mask.any(axis=0).sum()),
                        variables=bad_vars,
                    )
                )
    return sites


def check_interior_clean(blocks: Iterable["Block"]) -> List[PoisonSite]:
    """Find blocks whose *interior* holds non-finite values.

    Any poison consumed by a kernel propagates as NaN into the updated
    interior, so this is the sanitizer's backstop after each stage (it
    also catches genuine physics blow-ups, reported as contamination).
    """
    sites: List[PoisonSite] = []
    for block in blocks:
        interior = block.interior
        bad = ~np.isfinite(interior)
        if bad.any():
            bad_vars = tuple(
                int(v) for v in np.nonzero(bad.any(axis=tuple(range(1, bad.ndim))))[0]
            )
            sites.append(
                PoisonSite(
                    block=block.id,
                    where="interior",
                    face=None,
                    n_cells=int(bad.any(axis=0).sum()),
                    variables=bad_vars,
                )
            )
    return sites


class GhostSanitizer:
    """Driver-facing sanitizer state machine.

    The serial driver (and the emulated machine) call three hooks:

    * :meth:`before_exchange` — re-poison every ghost layer, so the
      exchange must prove it fills everything the kernels need;
    * :meth:`after_exchange` — verify the stencil read regions are
      poison-free and raise :class:`PoisonError` otherwise;
    * :meth:`after_stage` — verify no NaN leaked into the interiors.

    ``depth`` bounds the verified slab to what the attached scheme
    actually reads (``scheme.required_ghost``); ``None`` checks the
    full ghost width.
    """

    def __init__(self, depth: Optional[int] = None) -> None:
        self.depth = depth
        #: exchanges verified and ghost cells poisoned (diagnostics)
        self.n_exchanges_checked = 0
        self.n_cells_poisoned = 0

    def before_exchange(self, blocks: Iterable["Block"]) -> None:
        self.n_cells_poisoned += poison_forest(blocks)

    def after_exchange(self, blocks: Iterable["Block"]) -> None:
        sites = check_stencil_ghosts(blocks, self.depth)
        self.n_exchanges_checked += 1
        if sites:
            raise PoisonError(
                "unfilled ghost cells in a stencil read region after an "
                "exchange (exchange or boundary conditions left them stale)",
                sites,
            )

    def after_stage(self, blocks: Iterable["Block"]) -> None:
        sites = check_interior_clean(blocks)
        if sites:
            raise PoisonError(
                "non-finite values in block interiors after a kernel stage "
                "(poison or NaN was consumed by the update)",
                sites,
            )
