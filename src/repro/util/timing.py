"""Lightweight phase timers and statistics helpers.

The serial driver and the benchmarks use :class:`PhaseTimer` to attribute
wall-clock time to the phases the paper discusses (per-block compute,
ghost exchange, adaptation, load balancing), and :func:`measure` for
repeated minimum-of-N timing as recommended for noisy environments.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List

__all__ = ["PhaseTimer", "measure", "TimingResult", "wall_clock"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds — the *only* sanctioned time source
    for deterministic-replay code (``resilience/``, the rank emulator).

    Those modules must not call ``time.perf_counter()`` directly (lint
    rule REPRO104): routing every read through this indirection keeps
    replayed recoveries bit-for-bit testable, because a test or replay
    harness can monkeypatch one function to freeze or script time.
    """
    return time.perf_counter()


@dataclass
class TimingResult:
    """Summary of repeated timing of a callable."""

    best: float
    mean: float
    times: List[float]

    @property
    def repeats(self) -> int:
        return len(self.times)


def measure(fn: Callable[[], None], *, repeats: int = 5, warmup: int = 1) -> TimingResult:
    """Time ``fn`` ``repeats`` times after ``warmup`` untimed calls.

    Returns the best (minimum) and mean wall time.  The minimum is the
    standard robust estimator for kernel benchmarking: system noise only
    ever adds time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return TimingResult(best=min(times), mean=sum(times) / len(times), times=times)


@dataclass
class PhaseTimer:
    """Accumulates wall time per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("ghost_exchange"):
            forest.fill_ghosts()
        print(timer.totals["ghost_exchange"])

    Nested phases record **self time**: a phase opened inside another
    (a driver hook that itself calls timed compute, say) is charged to
    the inner name only, and the enclosing phase's total excludes it.
    Each second of wall time is therefore attributed to exactly one
    phase, :attr:`total` never exceeds elapsed wall time, and
    :meth:`fraction` sums to 1 over the phases — nesting used to
    double-count the inner span in both totals.
    """

    totals: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    counts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: per-open-phase accumulator of time spent in nested child phases
    _child_time: List[float] = field(default_factory=list, repr=False)

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        self._child_time.append(0.0)
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            children = self._child_time.pop()
            self.totals[name] += elapsed - children
            self.counts[name] += 1
            if self._child_time:
                # Charge the whole span (self + descendants) to the
                # parent's child accumulator so the parent subtracts it.
                self._child_time[-1] += elapsed

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fraction(self, name: str) -> float:
        """Fraction of the total accumulated time spent in ``name``."""
        total = self.total
        return self.totals.get(name, 0.0) / total if total > 0 else 0.0

    def report(self) -> str:
        """Multi-line human-readable summary, phases sorted by time."""
        lines = []
        for name in sorted(self.totals, key=lambda n: -self.totals[n]):
            lines.append(
                f"{name:24s} {self.totals[name]:10.4f}s "
                f"({100 * self.fraction(name):5.1f}%)  x{self.counts[name]}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()
