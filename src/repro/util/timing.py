"""Lightweight phase timers and statistics helpers.

The serial driver and the benchmarks use :class:`PhaseTimer` to attribute
wall-clock time to the phases the paper discusses (per-block compute,
ghost exchange, adaptation, load balancing), and :func:`measure` for
repeated minimum-of-N timing as recommended for noisy environments.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List

__all__ = ["PhaseTimer", "measure", "TimingResult", "wall_clock"]


def wall_clock() -> float:
    """Monotonic wall-clock seconds — the *only* sanctioned time source
    for deterministic-replay code (``resilience/``, the rank emulator).

    Those modules must not call ``time.perf_counter()`` directly (lint
    rule REPRO104): routing every read through this indirection keeps
    replayed recoveries bit-for-bit testable, because a test or replay
    harness can monkeypatch one function to freeze or script time.
    """
    return time.perf_counter()


@dataclass
class TimingResult:
    """Summary of repeated timing of a callable."""

    best: float
    mean: float
    times: List[float]

    @property
    def repeats(self) -> int:
        return len(self.times)


def measure(fn: Callable[[], None], *, repeats: int = 5, warmup: int = 1) -> TimingResult:
    """Time ``fn`` ``repeats`` times after ``warmup`` untimed calls.

    Returns the best (minimum) and mean wall time.  The minimum is the
    standard robust estimator for kernel benchmarking: system noise only
    ever adds time.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return TimingResult(best=min(times), mean=sum(times) / len(times), times=times)


@dataclass
class PhaseTimer:
    """Accumulates wall time per named phase.

    Usage::

        timer = PhaseTimer()
        with timer.phase("ghost_exchange"):
            forest.fill_ghosts()
        print(timer.totals["ghost_exchange"])
    """

    totals: Dict[str, float] = field(default_factory=lambda: defaultdict(float))
    counts: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.totals[name] += time.perf_counter() - t0
            self.counts[name] += 1

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def fraction(self, name: str) -> float:
        """Fraction of the total accumulated time spent in ``name``."""
        total = self.total
        return self.totals.get(name, 0.0) / total if total > 0 else 0.0

    def report(self) -> str:
        """Multi-line human-readable summary, phases sorted by time."""
        lines = []
        for name in sorted(self.totals, key=lambda n: -self.totals[n]):
            lines.append(
                f"{name:24s} {self.totals[name]:10.4f}s "
                f"({100 * self.fraction(name):5.1f}%)  x{self.counts[name]}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()
