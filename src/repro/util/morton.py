"""Space-filling-curve orderings for block addressing and partitioning.

Adaptive blocks are ordered along a space-filling curve (SFC) so that
consecutive blocks in the ordering are usually spatial neighbors.  The
parallel partitioner (:mod:`repro.parallel.partition`) cuts this 1-D
ordering into ``P`` contiguous chunks, which yields compact per-processor
sub-domains and therefore small ghost-exchange surfaces — the standard
technique used by the block-AMR codes descended from the paper
(BATS-R-US, PARAMESH, FLASH).

Two curves are provided:

* **Morton (Z-order)** — pure bit interleaving, O(bits) per key, works in
  any dimension.  This is the default ordering used throughout the
  library.
* **Hilbert** — better locality (no long diagonal jumps), provided for
  comparison in the partition-quality benchmarks.

All functions operate on non-negative integer logical coordinates, i.e.
the ``(i, j, k)`` position of a block *within its refinement level*.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = [
    "morton_encode",
    "morton_decode",
    "morton_encode2",
    "morton_decode2",
    "morton_encode3",
    "morton_decode3",
    "hilbert_encode2",
    "hilbert_decode2",
    "hilbert_encode3",
    "sfc_key",
]

#: Number of bits supported per coordinate.  21 bits × 3 dims = 63 bits,
#: which fits a signed 64-bit integer; Python ints are unbounded but the
#: limit keeps keys interoperable with numpy int64 arrays.
MAX_BITS = 21


def _check_coord(value: int, name: str) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    if value >= (1 << MAX_BITS):
        raise ValueError(f"{name}={value} exceeds {MAX_BITS}-bit limit")


def _part1by1(x: int) -> int:
    """Spread the low 21 bits of ``x`` so consecutive bits are 2 apart."""
    x &= (1 << MAX_BITS) - 1
    x = (x | (x << 16)) & 0x0000FFFF0000FFFF
    x = (x | (x << 8)) & 0x00FF00FF00FF00FF
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x << 2)) & 0x3333333333333333
    x = (x | (x << 1)) & 0x5555555555555555
    return x


def _compact1by1(x: int) -> int:
    """Inverse of :func:`_part1by1`."""
    x &= 0x5555555555555555
    x = (x | (x >> 1)) & 0x3333333333333333
    x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0F
    x = (x | (x >> 4)) & 0x00FF00FF00FF00FF
    x = (x | (x >> 8)) & 0x0000FFFF0000FFFF
    x = (x | (x >> 16)) & 0x00000000FFFFFFFF
    return x


def _part1by2(x: int) -> int:
    """Spread the low 21 bits of ``x`` so consecutive bits are 3 apart."""
    x &= (1 << MAX_BITS) - 1
    x = (x | (x << 32)) & 0x1F00000000FFFF
    x = (x | (x << 16)) & 0x1F0000FF0000FF
    x = (x | (x << 8)) & 0x100F00F00F00F00F
    x = (x | (x << 4)) & 0x10C30C30C30C30C3
    x = (x | (x << 2)) & 0x1249249249249249
    return x


def _compact1by2(x: int) -> int:
    """Inverse of :func:`_part1by2`."""
    x &= 0x1249249249249249
    x = (x | (x >> 2)) & 0x10C30C30C30C30C3
    x = (x | (x >> 4)) & 0x100F00F00F00F00F
    x = (x | (x >> 8)) & 0x1F0000FF0000FF
    x = (x | (x >> 16)) & 0x1F00000000FFFF
    x = (x | (x >> 32)) & 0x1FFFFF
    return x


def morton_encode2(i: int, j: int) -> int:
    """Interleave two coordinates into a 2-D Morton key (j is high bit)."""
    _check_coord(i, "i")
    _check_coord(j, "j")
    return _part1by1(i) | (_part1by1(j) << 1)


def morton_decode2(key: int) -> Tuple[int, int]:
    """Recover ``(i, j)`` from a 2-D Morton key."""
    if key < 0:
        raise ValueError(f"key must be non-negative, got {key}")
    return _compact1by1(key), _compact1by1(key >> 1)


def morton_encode3(i: int, j: int, k: int) -> int:
    """Interleave three coordinates into a 3-D Morton key (k is high bit)."""
    _check_coord(i, "i")
    _check_coord(j, "j")
    _check_coord(k, "k")
    return _part1by2(i) | (_part1by2(j) << 1) | (_part1by2(k) << 2)


def morton_decode3(key: int) -> Tuple[int, int, int]:
    """Recover ``(i, j, k)`` from a 3-D Morton key."""
    if key < 0:
        raise ValueError(f"key must be non-negative, got {key}")
    return _compact1by2(key), _compact1by2(key >> 1), _compact1by2(key >> 2)


def morton_encode(coords: Sequence[int]) -> int:
    """Morton-encode a 1-, 2- or 3-dimensional coordinate tuple."""
    d = len(coords)
    if d == 1:
        _check_coord(coords[0], "i")
        return coords[0]
    if d == 2:
        return morton_encode2(coords[0], coords[1])
    if d == 3:
        return morton_encode3(coords[0], coords[1], coords[2])
    raise ValueError(f"unsupported dimension {d} (must be 1, 2, or 3)")


def morton_decode(key: int, ndim: int) -> Tuple[int, ...]:
    """Decode a Morton key back into an ``ndim``-tuple of coordinates."""
    if ndim == 1:
        if key < 0:
            raise ValueError(f"key must be non-negative, got {key}")
        return (key,)
    if ndim == 2:
        return morton_decode2(key)
    if ndim == 3:
        return morton_decode3(key)
    raise ValueError(f"unsupported dimension {ndim} (must be 1, 2, or 3)")


# ---------------------------------------------------------------------------
# Hilbert curve (for partition-locality comparison benchmarks)
# ---------------------------------------------------------------------------

def hilbert_encode2(i: int, j: int, order: int) -> int:
    """Distance along the 2-D Hilbert curve of the given ``order``.

    ``order`` is the number of bits per coordinate; the curve fills the
    ``2**order × 2**order`` grid.  Classic rotate-and-reflect algorithm.
    """
    _check_coord(i, "i")
    _check_coord(j, "j")
    if not 0 < order <= MAX_BITS:
        raise ValueError(f"order must be in (0, {MAX_BITS}], got {order}")
    if i >= (1 << order) or j >= (1 << order):
        raise ValueError("coordinate outside the grid for this order")
    rx = ry = 0
    d = 0
    s = 1 << (order - 1)
    x, y = i, j
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_decode2(d: int, order: int) -> Tuple[int, int]:
    """Inverse of :func:`hilbert_encode2`."""
    if d < 0:
        raise ValueError(f"d must be non-negative, got {d}")
    if not 0 < order <= MAX_BITS:
        raise ValueError(f"order must be in (0, {MAX_BITS}], got {order}")
    x = y = 0
    t = d
    s = 1
    while s < (1 << order):
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


# Gray-code based 3-D Hilbert.  Transposed-coordinate algorithm (Skilling).
def _transpose_to_hilbert(x: list[int], order: int) -> int:
    """Convert transposed Hilbert coordinates to a single integer index."""
    n = len(x)
    key = 0
    for bit in range(order - 1, -1, -1):
        for axis in range(n):
            key = (key << 1) | ((x[axis] >> bit) & 1)
    return key


def hilbert_encode3(i: int, j: int, k: int, order: int) -> int:
    """Distance along the 3-D Hilbert curve (Skilling's algorithm)."""
    for v, name in ((i, "i"), (j, "j"), (k, "k")):
        _check_coord(v, name)
        if v >= (1 << order):
            raise ValueError(f"{name}={v} outside the grid for order {order}")
    if not 0 < order <= MAX_BITS:
        raise ValueError(f"order must be in (0, {MAX_BITS}], got {order}")
    x = [i, j, k]
    n = 3
    m = 1 << (order - 1)
    # Inverse undo of Skilling's transform.
    q = m
    while q > 1:
        p = q - 1
        for a in range(n):
            if x[a] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[a]) & p
                x[0] ^= t
                x[a] ^= t
        q >>= 1
    # Gray encode.
    for a in range(1, n):
        x[a] ^= x[a - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for a in range(n):
        x[a] ^= t
    return _transpose_to_hilbert(x, order)


def sfc_key(coords: Sequence[int], level: int, curve: str = "morton") -> int:
    """Global SFC key for a block: level-major, curve-minor.

    Keys sort first by refinement level bits so that keys from different
    levels never collide; within a level the chosen curve orders blocks.
    Used as the canonical deterministic ordering of a forest.
    """
    d = len(coords)
    if curve == "morton":
        base = morton_encode(coords)
    elif curve == "hilbert":
        order = max(1, max(int(c).bit_length() for c in coords) or 1)
        if d == 2:
            base = hilbert_encode2(coords[0], coords[1], order)
        elif d == 3:
            base = hilbert_encode3(coords[0], coords[1], coords[2], order)
        elif d == 1:
            base = coords[0]
        else:
            raise ValueError(f"unsupported dimension {d}")
    else:
        raise ValueError(f"unknown curve {curve!r} (use 'morton' or 'hilbert')")
    return (level << (d * MAX_BITS)) | base
