"""Shared utilities: space-filling curves, geometry, timing."""

from repro.util.geometry import (
    Box,
    child_offsets,
    face_axis,
    face_index,
    face_normal,
    face_side,
    iter_faces,
    opposite_face,
)
from repro.util.morton import (
    hilbert_encode2,
    hilbert_encode3,
    morton_decode,
    morton_encode,
    sfc_key,
)
from repro.util.timing import PhaseTimer, TimingResult, measure

__all__ = [
    "Box",
    "child_offsets",
    "face_axis",
    "face_index",
    "face_normal",
    "face_side",
    "iter_faces",
    "opposite_face",
    "hilbert_encode2",
    "hilbert_encode3",
    "morton_decode",
    "morton_encode",
    "sfc_key",
    "PhaseTimer",
    "TimingResult",
    "measure",
]
