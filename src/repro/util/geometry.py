"""Geometric primitives shared by the block and tree data structures.

The library works in ``d`` ∈ {1, 2, 3} dimensions.  Faces of a
``d``-dimensional box are enumerated as ``2*axis + side`` with
``side == 0`` the low face and ``side == 1`` the high face, so for d=3:

====  ====  ====
face  axis  side
====  ====  ====
0     x     low
1     x     high
2     y     low
3     y     high
4     z     low
5     z     high
====  ====  ====
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

__all__ = [
    "Box",
    "face_axis",
    "face_side",
    "face_index",
    "opposite_face",
    "iter_faces",
    "face_normal",
    "child_offsets",
]


def face_axis(face: int) -> int:
    """Axis (0=x, 1=y, 2=z) that a face is perpendicular to."""
    return face >> 1


def face_side(face: int) -> int:
    """0 for the low side of the axis, 1 for the high side."""
    return face & 1


def face_index(axis: int, side: int) -> int:
    """Face index from (axis, side)."""
    if side not in (0, 1):
        raise ValueError(f"side must be 0 or 1, got {side}")
    if axis < 0:
        raise ValueError(f"axis must be non-negative, got {axis}")
    return 2 * axis + side


def opposite_face(face: int) -> int:
    """The face on the other side of the same axis."""
    return face ^ 1


def iter_faces(ndim: int) -> Iterator[int]:
    """Iterate over the ``2*ndim`` face indices of a d-dimensional box."""
    return iter(range(2 * ndim))


def face_normal(face: int, ndim: int) -> Tuple[int, ...]:
    """Outward unit normal of a face as an integer tuple."""
    normal = [0] * ndim
    normal[face_axis(face)] = 1 if face_side(face) else -1
    return tuple(normal)


def child_offsets(ndim: int) -> Tuple[Tuple[int, ...], ...]:
    """The 2^d child positions within a refined parent, binary-ordered.

    Child ``c`` occupies offset ``((c >> 0) & 1, (c >> 1) & 1, ...)``:
    bit 0 is the x offset, bit 1 the y offset, bit 2 the z offset.  This
    matches Morton sub-key ordering so children are SFC-contiguous.
    """
    return tuple(
        tuple((c >> axis) & 1 for axis in range(ndim)) for c in range(1 << ndim)
    )


@dataclass(frozen=True)
class Box:
    """Axis-aligned box: physical extent of a block or domain.

    Parameters
    ----------
    lo, hi:
        Coordinate tuples of the low and high corners.  Must have the
        same length (the dimensionality) and satisfy ``lo < hi``
        component-wise.
    """

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError("lo and hi must have the same dimension")
        if not self.lo:
            raise ValueError("box must be at least 1-dimensional")
        for a, b in zip(self.lo, self.hi):
            if not a < b:
                raise ValueError(f"degenerate box: lo={self.lo} hi={self.hi}")

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def widths(self) -> Tuple[float, ...]:
        return tuple(b - a for a, b in zip(self.lo, self.hi))

    @property
    def center(self) -> Tuple[float, ...]:
        return tuple(0.5 * (a + b) for a, b in zip(self.lo, self.hi))

    @property
    def volume(self) -> float:
        v = 1.0
        for w in self.widths:
            v *= w
        return v

    def contains(self, point: Sequence[float], *, tol: float = 0.0) -> bool:
        """True if ``point`` lies inside the box (closed, with tolerance)."""
        return all(
            a - tol <= p <= b + tol for p, a, b in zip(point, self.lo, self.hi)
        )

    def overlaps(self, other: "Box") -> bool:
        """True if the two boxes intersect in a set of positive measure."""
        return all(
            a1 < b2 and a2 < b1
            for a1, b1, a2, b2 in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def subbox(self, offsets: Sequence[int]) -> "Box":
        """The child box at the given binary offsets (one octant/quadrant)."""
        if len(offsets) != self.ndim:
            raise ValueError("offsets dimension mismatch")
        mid = self.center
        lo = tuple(m if o else a for a, m, o in zip(self.lo, mid, offsets))
        hi = tuple(b if o else m for b, m, o in zip(self.hi, mid, offsets))
        return Box(lo, hi)

    def cell_widths(self, shape: Sequence[int]) -> Tuple[float, ...]:
        """Cell sizes when the box is divided into a ``shape`` array."""
        if len(shape) != self.ndim:
            raise ValueError("shape dimension mismatch")
        return tuple(w / n for w, n in zip(self.widths, shape))

    def cell_centers(self, shape: Sequence[int]) -> Tuple[np.ndarray, ...]:
        """1-D arrays of cell-center coordinates along each axis."""
        dx = self.cell_widths(shape)
        return tuple(
            a + (np.arange(n) + 0.5) * h
            for a, n, h in zip(self.lo, shape, dx)
        )

    def meshgrid(self, shape: Sequence[int]) -> Tuple[np.ndarray, ...]:
        """Full d-dimensional cell-center coordinate arrays (ij indexing)."""
        return tuple(np.meshgrid(*self.cell_centers(shape), indexing="ij"))
