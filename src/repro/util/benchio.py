"""Machine-readable benchmark records.

Every performance benchmark can persist its headline numbers as a
``BENCH_<name>.json`` file at the repository root — a canonical,
diff-able record (timestamp, git revision, cells/s, phase timings,
speedups) that seeds the repo's performance trajectory: successive PRs
append comparable records instead of burying numbers in prose.

The schema is deliberately loose: a record is the standard envelope from
:func:`make_bench_record` plus whatever payload the benchmark measured.
Consumers (CI's perf-smoke job, EXPERIMENTS.md tables) read only the
keys they know.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["repo_root", "git_revision", "make_bench_record", "write_bench_json"]

#: schema version of the record envelope
BENCH_SCHEMA = 1


def repo_root() -> Path:
    """The repository root (three levels above ``src/repro/util``)."""
    return Path(__file__).resolve().parents[3]


def git_revision(cwd: Optional[Path] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or repo_root(),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def make_bench_record(name: str, **payload: Any) -> Dict[str, Any]:
    """Standard benchmark-record envelope plus benchmark payload.

    The envelope carries ``name``, ``schema``, an ISO-8601 UTC
    ``timestamp``, and the ``git_rev`` of the working tree.
    """
    record: Dict[str, Any] = {
        "name": name,
        "schema": BENCH_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_revision(),
    }
    record.update(payload)
    return record


def write_bench_json(
    record: Dict[str, Any], directory: Optional[Path] = None
) -> Path:
    """Write ``record`` to ``BENCH_<name>.json`` (repo root by default).

    Returns the path written.  The record must come from
    :func:`make_bench_record` (or at least carry a ``name`` key).

    The write is atomic (temp file + ``os.replace``, like checkpoint
    v2): these records are the repo's committed performance trajectory,
    and an interrupted bench run must not replace a good record with a
    truncated one.
    """
    name = record["name"]
    out = (directory or repo_root()) / f"BENCH_{name}.json"
    text = json.dumps(record, indent=2, sort_keys=True) + "\n"
    tmp = out.with_name(out.name + ".tmp")
    try:
        tmp.write_text(text)
        os.replace(tmp, out)
    finally:
        tmp.unlink(missing_ok=True)
    return out
