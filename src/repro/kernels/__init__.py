"""Pluggable kernel backends for the tiled sweeps.

The execution engines (`repro.amr.driver`, `repro.solvers.timestep`,
`repro.core.ghost`) dispatch their per-tile hot operations through a
:class:`~repro.kernels.base.KernelBackend`:

* ``numpy`` — the reference backend: whole-array numpy expressions,
  bit-for-bit by construction (it *is* the existing machinery);
* ``numba`` — fused single-pass JIT kernels (``fastmath=False``, pinned
  signatures) that are bit-for-bit identical to numpy and skip the
  intermediate temporaries.

``get_backend("numba")`` silently degrades to the numpy backend (with a
one-time warning) when numba is not installed — the optional dependency
is confined to this package (lint rule REPRO108) and installed via the
``jit`` extra (``pip install repro-adaptive-blocks[jit]``).
"""

from __future__ import annotations

import warnings
from typing import Dict, Tuple

from repro.kernels.base import KernelBackend, NumpyBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "BACKEND_NAMES",
    "get_backend",
    "available_backends",
    "numba_available",
    "reset_backends",
]

#: every registered backend name (whether currently importable or not)
BACKEND_NAMES: Tuple[str, ...] = ("numpy", "numba")

_instances: Dict[str, KernelBackend] = {}
_warned_numba_missing = False


def numba_available() -> bool:
    """True when the numba backend can actually be imported."""
    try:
        import repro.kernels.numba_backend  # noqa: F401
    except Exception:
        return False
    return True


def available_backends() -> Tuple[str, ...]:
    """Backend names usable right now (``numba`` only when installed)."""
    return BACKEND_NAMES if numba_available() else ("numpy",)


def get_backend(name: str = "numpy") -> KernelBackend:
    """The process-wide backend instance for ``name``.

    Instances are cached (JIT backends hold their compiled-kernel caches,
    so sharing one instance shares the warm-up cost).  Requesting
    ``"numba"`` without numba installed warns once and returns the numpy
    backend.  Unknown names raise ``ValueError`` listing the registry.
    """
    global _warned_numba_missing
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            + ", ".join(BACKEND_NAMES)
        )
    inst = _instances.get(name)
    if inst is not None:
        return inst
    if name == "numba":
        try:
            from repro.kernels.numba_backend import NumbaBackend
        except ImportError:
            if not _warned_numba_missing:
                warnings.warn(
                    "kernel backend 'numba' requested but numba is not "
                    "installed; falling back to the 'numpy' backend "
                    "(install the 'jit' extra to enable it)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _warned_numba_missing = True
            inst = get_backend("numpy")
            _instances[name] = inst
            return inst
        inst = NumbaBackend()
    else:
        inst = NumpyBackend()
    _instances[name] = inst
    return inst


def reset_backends() -> None:
    """Drop cached backend instances and the fallback-warned flag.

    Test hook: lets the numba-missing fallback path (and its one-time
    warning) be exercised repeatedly with monkeypatched imports.
    """
    global _warned_numba_missing
    _instances.clear()
    _warned_numba_missing = False
