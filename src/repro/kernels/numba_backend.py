"""Fused numba JIT kernels — bit-for-bit with the numpy reference.

One compiled kernel per (physics, order, limiter, Riemann, ndim) combo
performs the whole per-tile flux-divergence sweep in a single pass over
the ``(tile, nvar, *padded)`` rows: primitives, reconstruction, face
fluxes, divergence accumulation and source terms, with no intermediate
whole-tile temporaries.  A second kernel family fuses the batched
``stable_dt`` signal-speed reduction, and pinned-signature scatter loops
execute the flat ghost copies.

Bit-for-bit policy
------------------

The numpy reference path is a fixed sequence of IEEE-754 float64
operations per cell; these kernels perform the *same operations in the
same order* per cell, so results are identical to the last bit:

* ``fastmath=False`` everywhere — no reassociation, no FMA contraction
  of ``a * b + c`` chains, no flush-to-zero;
* expression trees mirror the reference source literally, including
  left-to-right association (``0.5 * rho * w**2`` is ``(0.5*rho)*(w*w)``
  — numpy computes integer powers of 2 as ``w*w``);
* accumulators start from ``0.0`` and fold with the reference's
  operations (``dudt`` is zero-filled then ``-=``-ed per axis, never
  negated: ``0.0 - t`` and ``-t`` differ on signed zeros);
* ``np.maximum``/``np.minimum`` semantics are replicated exactly by
  :func:`_nb_max`/:func:`_nb_min` — NaN propagates, ties return the
  second operand (which resolves ``max(-0.0, +0.0)`` the way numpy
  does);
* reductions match ``ndarray.max``'s NaN-propagating fold, and the
  per-axis CFL fold keeps the current best on a non-greater (NaN)
  candidate, exactly like ``np.where(m > best, m, best)``.

Signatures are pinned (eager compilation with explicit types), so every
kernel is compiled exactly once per combo, at first dispatch; the
compile seconds are accumulated on the backend (``compile_s``) and kept
out of benchmark timings (compilation happens during warm-up steps).
Loops are serial — no ``prange`` — because deterministic accumulation
order is part of the contract.

numba may only be imported inside ``repro.kernels`` (lint rule
REPRO108); this module fails to import cleanly when numba is missing and
the registry falls back to the numpy backend.
"""

from __future__ import annotations

import time as _time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np
from numba import njit, types

from repro.kernels.base import KernelBackend
from repro.obs.metrics import METRICS
from repro.solvers.state import P_FLOOR, RHO_FLOOR

if TYPE_CHECKING:  # pragma: no cover
    from repro.solvers.scheme import FVScheme

__all__ = ["NumbaBackend"]

_f8 = types.float64
_i8 = types.int64


def _arr(nd: int, layout: str) -> types.Array:
    return types.Array(_f8, nd, layout)


# ---------------------------------------------------------------------------
# scalar IEEE helpers (exact np.maximum / np.minimum / np.sign semantics)
# ---------------------------------------------------------------------------


@njit(inline="always", fastmath=False)
def _nb_max(a, b):
    # np.maximum: NaN propagates; on ties (incl. -0.0 vs +0.0) numpy
    # returns the second operand, as does `a if a > b else b`.
    if a != a:
        return a
    if b != b:
        return b
    return a if a > b else b


@njit(inline="always", fastmath=False)
def _nb_min(a, b):
    if a != a:
        return a
    if b != b:
        return b
    return a if a < b else b


@njit(inline="always", fastmath=False)
def _nb_sign(x):
    # np.sign: NaN -> NaN, 0.0 and -0.0 -> +0.0.
    if x != x:
        return x
    if x > 0.0:
        return 1.0
    if x < 0.0:
        return -1.0
    return 0.0


@njit(inline="always", fastmath=False)
def _no_source(u, src):  # pragma: no cover - compiled
    return


# ---------------------------------------------------------------------------
# flat ghost scatter (pinned signatures, compiled at module import)
# ---------------------------------------------------------------------------

_t0_scatter = _time.perf_counter()


@njit(
    types.void(_arr(1, "C"), types.Array(types.int32, 1, "C"), types.Array(types.int32, 1, "C")),
    fastmath=False,
)
def _scatter_i32(flat, dst, src):  # pragma: no cover - compiled
    for k in range(dst.shape[0]):
        flat[dst[k]] = flat[src[k]]


@njit(
    types.void(_arr(1, "C"), types.Array(types.int64, 1, "C"), types.Array(types.int64, 1, "C")),
    fastmath=False,
)
def _scatter_i64(flat, dst, src):  # pragma: no cover - compiled
    for k in range(dst.shape[0]):
        flat[dst[k]] = flat[src[k]]


_SCATTER_COMPILE_S = _time.perf_counter() - _t0_scatter


# ---------------------------------------------------------------------------
# scalar limiters (mirroring repro.solvers.limiters expression by expression)
# ---------------------------------------------------------------------------


def _build_limiter(name: str) -> Optional[Callable]:
    if name == "minmod":

        @njit(inline="always", fastmath=False)
        def lim(a, b):
            if a * b > 0.0:
                return a if abs(a) < abs(b) else b
            return 0.0

    elif name == "van_leer":

        @njit(inline="always", fastmath=False)
        def lim(a, b):
            if a * b > 0.0:
                denom = a + b
                safe = denom if abs(denom) > 1e-300 else 1.0
                return 2.0 * a * b / safe
            return 0.0

    elif name == "mc":

        @njit(inline="always", fastmath=False)
        def lim(a, b):
            if a * b > 0.0:
                central = 0.5 * (a + b)
                m = _nb_min(_nb_min(2.0 * abs(a), 2.0 * abs(b)), abs(central))
                return _nb_sign(central) * m
            return 0.0

    elif name == "superbee":

        @njit(inline="always", fastmath=False)
        def lim(a, b):
            if a * b > 0.0:
                tb = 2 * b
                ta = 2 * a
                s1 = a if abs(a) < abs(tb) else tb
                s2 = ta if abs(ta) < abs(b) else b
                return s1 if abs(s1) > abs(s2) else s2
            return 0.0

    else:
        return None
    return lim


# ---------------------------------------------------------------------------
# per-physics scalar ops (cell vectors in, cell vectors/scalars out)
# ---------------------------------------------------------------------------

#: ops = (nvar, c2p, p2c, flux, nvel, char, source_kind, source_cell)
#: source_kind: 0 none, 1 per-cell (Euler gravity), 2 Powell (needs w stencil)
_PhysicsOps = Tuple[int, Any, Any, Any, Any, Any, int, Any]

_PHYSICS_CACHE: Dict[Tuple, _PhysicsOps] = {}


def _make_advection(velocity: Tuple[float, ...]) -> _PhysicsOps:
    vel = np.array(velocity, dtype=np.float64)

    @njit(inline="always", fastmath=False)
    def c2p(u, w):
        w[0] = u[0]

    @njit(inline="always", fastmath=False)
    def p2c(w, u):
        u[0] = w[0]

    @njit(inline="always", fastmath=False)
    def flux(w, axis, f):
        f[0] = vel[axis] * w[0]

    @njit(inline="always", fastmath=False)
    def nvel(w, axis):
        return vel[axis]

    @njit(inline="always", fastmath=False)
    def char(w, axis):
        return 0.0

    return (1, c2p, p2c, flux, nvel, char, 0, _no_source)


def _make_burgers(direction: Tuple[float, ...]) -> _PhysicsOps:
    dirv = np.array(direction, dtype=np.float64)

    @njit(inline="always", fastmath=False)
    def c2p(u, w):
        w[0] = u[0]

    @njit(inline="always", fastmath=False)
    def p2c(w, u):
        u[0] = w[0]

    @njit(inline="always", fastmath=False)
    def flux(w, axis, f):
        f[0] = 0.5 * dirv[axis] * w[0] * w[0]

    @njit(inline="always", fastmath=False)
    def nvel(w, axis):
        return dirv[axis] * w[0]

    @njit(inline="always", fastmath=False)
    def char(w, axis):
        return 0.0

    return (1, c2p, p2c, flux, nvel, char, 0, _no_source)


def _make_euler(
    nd: int, gamma: float, gravity: Optional[Tuple[float, ...]]
) -> _PhysicsOps:
    nvar = nd + 2
    ie = nd + 1
    gm1 = gamma - 1.0

    @njit(inline="always", fastmath=False)
    def c2p(u, w):
        rho = _nb_max(u[0], RHO_FLOOR)
        w[0] = rho
        ke = 0.0
        for a in range(nd):
            w[1 + a] = u[1 + a] / rho
            ke += u[1 + a] * w[1 + a]
        p = gm1 * (u[ie] - 0.5 * ke)
        w[ie] = _nb_max(p, P_FLOOR)

    @njit(inline="always", fastmath=False)
    def p2c(w, u):
        rho = _nb_max(w[0], RHO_FLOOR)
        u[0] = rho
        ke = 0.0
        for a in range(nd):
            u[1 + a] = rho * w[1 + a]
            ke += rho * (w[1 + a] * w[1 + a])
        u[ie] = _nb_max(w[ie], P_FLOOR) / gm1 + 0.5 * ke

    @njit(inline="always", fastmath=False)
    def flux(w, axis, f):
        rho = w[0]
        un = w[1 + axis]
        p = w[ie]
        f[0] = rho * un
        for a in range(nd):
            f[1 + a] = rho * un * w[1 + a]
        f[1 + axis] += p
        e = p / gm1
        for a in range(nd):
            e += 0.5 * rho * (w[1 + a] * w[1 + a])
        f[ie] = un * (e + p)

    @njit(inline="always", fastmath=False)
    def nvel(w, axis):
        return w[1 + axis]

    @njit(inline="always", fastmath=False)
    def char(w, axis):
        return np.sqrt(gamma * w[ie] / _nb_max(w[0], RHO_FLOOR))

    if gravity is None:
        return (nvar, c2p, p2c, flux, nvel, char, 0, _no_source)

    grav = np.array(gravity, dtype=np.float64)

    @njit(inline="always", fastmath=False)
    def source_cell(u, src):
        for v in range(nvar):
            src[v] = 0.0
        rho = u[0]
        for a in range(nd):
            gv = grav[a]
            if gv == 0.0:
                continue
            src[1 + a] += rho * gv
            src[ie] += u[1 + a] * gv

    return (nvar, c2p, p2c, flux, nvel, char, 1, source_cell)


def _make_shallow_water(nd: int, gravity: float) -> _PhysicsOps:
    nvar = nd + 1
    grav = gravity

    @njit(inline="always", fastmath=False)
    def c2p(u, w):
        h = _nb_max(u[0], RHO_FLOOR)
        w[0] = h
        for a in range(nd):
            w[1 + a] = u[1 + a] / h

    @njit(inline="always", fastmath=False)
    def p2c(w, u):
        h = _nb_max(w[0], RHO_FLOOR)
        u[0] = h
        for a in range(nd):
            u[1 + a] = h * w[1 + a]

    @njit(inline="always", fastmath=False)
    def flux(w, axis, f):
        h = w[0]
        un = w[1 + axis]
        f[0] = h * un
        for a in range(nd):
            f[1 + a] = h * un * w[1 + a]
        f[1 + axis] += 0.5 * grav * h * h

    @njit(inline="always", fastmath=False)
    def nvel(w, axis):
        return w[1 + axis]

    @njit(inline="always", fastmath=False)
    def char(w, axis):
        return np.sqrt(grav * _nb_max(w[0], RHO_FLOOR))

    return (nvar, c2p, p2c, flux, nvel, char, 0, _no_source)


def _make_mhd(gamma: float, powell: bool) -> _PhysicsOps:
    gm1 = gamma - 1.0

    @njit(inline="always", fastmath=False)
    def c2p(u, w):
        rho = _nb_max(u[0], RHO_FLOOR)
        w[0] = rho
        ke = 0.0
        for c in range(3):
            w[1 + c] = u[1 + c] / rho
            ke += u[1 + c] * w[1 + c]
        b2 = u[5] * u[5] + u[6] * u[6] + u[7] * u[7]
        p = gm1 * (u[4] - 0.5 * ke - 0.5 * b2)
        w[4] = _nb_max(p, P_FLOOR)
        w[5] = u[5]
        w[6] = u[6]
        w[7] = u[7]

    @njit(inline="always", fastmath=False)
    def p2c(w, u):
        rho = _nb_max(w[0], RHO_FLOOR)
        u[0] = rho
        ke = 0.0
        for c in range(3):
            u[1 + c] = rho * w[1 + c]
            ke += rho * (w[1 + c] * w[1 + c])
        b2 = w[5] * w[5] + w[6] * w[6] + w[7] * w[7]
        u[4] = _nb_max(w[4], P_FLOOR) / gm1 + 0.5 * ke + 0.5 * b2
        u[5] = w[5]
        u[6] = w[6]
        u[7] = w[7]

    @njit(inline="always", fastmath=False)
    def flux(w, axis, f):
        rho = w[0]
        un = w[1 + axis]
        p = w[4]
        bn = w[5 + axis]
        b2 = w[5] * w[5] + w[6] * w[6] + w[7] * w[7]
        ptot = p + 0.5 * b2
        udotb = w[1] * w[5] + w[2] * w[6] + w[3] * w[7]
        f[0] = rho * un
        for c in range(3):
            f[1 + c] = rho * un * w[1 + c] - bn * w[5 + c]
        f[1 + axis] += ptot
        e = p / gm1 + 0.5 * rho * (w[1] * w[1] + w[2] * w[2] + w[3] * w[3]) + 0.5 * b2
        f[4] = un * (e + ptot) - bn * udotb
        for c in range(3):
            f[5 + c] = un * w[5 + c] - w[1 + c] * bn
        f[5 + axis] = 0.0

    @njit(inline="always", fastmath=False)
    def nvel(w, axis):
        return w[1 + axis]

    @njit(inline="always", fastmath=False)
    def char(w, axis):
        rho = _nb_max(w[0], RHO_FLOOR)
        a2 = gamma * _nb_max(w[4], P_FLOOR) / rho
        b2 = (w[5] * w[5] + w[6] * w[6] + w[7] * w[7]) / rho
        bn = w[5 + axis]
        bn2 = bn * bn / rho
        s = a2 + b2
        disc = np.sqrt(_nb_max(s * s - 4.0 * a2 * bn2, 0.0))
        return np.sqrt(_nb_max(0.5 * (s + disc), 0.0))

    return (8, c2p, p2c, flux, nvel, char, 2 if powell else 0, _no_source)


def _physics_key(scheme: "FVScheme") -> Optional[Tuple]:
    """Hashable identity of the physics closure, or None if unsupported.

    Exact-type checks: a subclass may override any hook, which would
    silently diverge from the compiled closure — decline instead."""
    from repro.solvers.advection import AdvectionScheme
    from repro.solvers.burgers import BurgersScheme
    from repro.solvers.euler import EulerScheme
    from repro.solvers.mhd import MHDScheme
    from repro.solvers.shallow_water import ShallowWaterScheme

    t = type(scheme)
    if t is AdvectionScheme:
        return ("advection", scheme.velocity)
    if t is BurgersScheme:
        return ("burgers", scheme.direction)
    if t is EulerScheme:
        return ("euler", scheme.ndim, scheme.gamma, scheme.gravity)
    if t is ShallowWaterScheme:
        return ("shallow_water", scheme.ndim, scheme.gravity)
    if t is MHDScheme:
        return ("mhd", scheme.gamma, bool(scheme.powell_source))
    return None


def _physics_ops(key: Tuple) -> _PhysicsOps:
    ops = _PHYSICS_CACHE.get(key)
    if ops is not None:
        return ops
    kind = key[0]
    if kind == "advection":
        ops = _make_advection(key[1])
    elif kind == "burgers":
        ops = _make_burgers(key[1])
    elif kind == "euler":
        ops = _make_euler(key[1], key[2], key[3])
    elif kind == "shallow_water":
        ops = _make_shallow_water(key[1], key[2])
    else:
        ops = _make_mhd(key[1], key[2])
    _PHYSICS_CACHE[key] = ops
    return ops


def _grid_compatible(scheme: "FVScheme", key: Tuple, nd: int) -> bool:
    """The grid dimension the kernel will sweep must be the one the
    physics closure was specialized for (or covered by it)."""
    kind = key[0]
    if kind in ("advection", "burgers"):
        return nd <= len(key[1])
    # euler / shallow_water / mhd carry an explicit scheme dimension
    return nd == scheme.ndim  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# Riemann + face-state evaluation along a pencil
# ---------------------------------------------------------------------------


def _build_riemann(kind: str, nvar: int, flux, p2c, nvel, char):
    """Scalar-vector Riemann solver writing one face flux column."""
    if kind == "rusanov":

        @njit(inline="always", fastmath=False)
        def riem(wl, wr, axis, fl, fr, ul, ur, out):
            flux(wl, axis, fl)
            flux(wr, axis, fr)
            p2c(wl, ul)
            p2c(wr, ur)
            sl = abs(nvel(wl, axis)) + char(wl, axis)
            sr = abs(nvel(wr, axis)) + char(wr, axis)
            smax = _nb_max(sl, sr)
            for v in range(nvar):
                out[v] = 0.5 * (fl[v] + fr[v]) - 0.5 * smax * (ur[v] - ul[v])

    elif kind == "hll":

        @njit(inline="always", fastmath=False)
        def riem(wl, wr, axis, fl, fr, ul, ur, out):
            flux(wl, axis, fl)
            flux(wr, axis, fr)
            p2c(wl, ul)
            p2c(wr, ur)
            unl = nvel(wl, axis)
            unr = nvel(wr, axis)
            cl = char(wl, axis)
            cr = char(wr, axis)
            sl = _nb_min(_nb_min(unl - cl, unr - cr), 0.0)
            sr = _nb_max(_nb_max(unl + cl, unr + cr), 0.0)
            d = sr - sl
            width = d if d > 1e-300 else 1.0
            for v in range(nvar):
                out[v] = (sr * fl[v] - sl * fr[v] + sl * sr * (ur[v] - ul[v])) / width

    else:
        return None
    return riem


def _build_faces(nvar: int, order: int, lim, riem):
    """Face fluxes F[:, 0..m] along one primitive pencil ``pen``.

    Face f sits between padded cells g-1+f and g+f; order 2 adds the
    limited half-slopes exactly as FVScheme.face_states (slopes are
    re-evaluated per adjacent face — same inputs, same ops, same
    bits)."""

    @njit(fastmath=False)
    def faces(pen, g, m, axis, F, wl, wr, fl, fr, ul, ur):
        for f in range(m + 1):
            cl = g - 1 + f
            cr = g + f
            if order == 1:
                for v in range(nvar):
                    wl[v] = pen[v, cl]
                    wr[v] = pen[v, cr]
            else:
                for v in range(nvar):
                    c0 = pen[v, cl]
                    s0 = lim(c0 - pen[v, cl - 1], pen[v, cl + 1] - c0)
                    wl[v] = c0 + 0.5 * s0
                    c1 = pen[v, cr]
                    s1 = lim(c1 - pen[v, cr - 1], pen[v, cr + 1] - c1)
                    wr[v] = c1 - 0.5 * s1
            riem(wl, wr, axis, fl, fr, ul, ur, F[:, f])

    return faces


# ---------------------------------------------------------------------------
# fused flux-divergence kernels (one per grid dimension)
# ---------------------------------------------------------------------------


def _build_flux_kernel_1d(nvar, c2p, faces, source_kind, source_cell):
    sig = types.void(_arr(3, "C"), _arr(2, "C"), _i8, _arr(3, "C"))

    @njit(sig, fastmath=False)
    def kernel(u, dxm, g, out):  # pragma: no cover - compiled
        B = u.shape[0]
        nx = u.shape[2]
        mx = nx - 2 * g
        w = np.empty((nvar, nx))
        F = np.empty((nvar, mx + 1))
        wl = np.empty(nvar)
        wr = np.empty(nvar)
        fl = np.empty(nvar)
        fr = np.empty(nvar)
        ul = np.empty(nvar)
        ur = np.empty(nvar)
        src = np.empty(nvar)
        for b in range(B):
            ub = u[b]
            ob = out[b]
            for i in range(nx):
                c2p(ub[:, i], w[:, i])
            for v in range(nvar):
                for i in range(mx):
                    ob[v, i] = 0.0
            d0 = dxm[b, 0]
            faces(w, g, mx, 0, F, wl, wr, fl, fr, ul, ur)
            for v in range(nvar):
                for i in range(mx):
                    ob[v, i] -= (F[v, i + 1] - F[v, i]) / d0
            if source_kind == 1:
                for i in range(mx):
                    source_cell(ub[:, g + i], src)
                    for v in range(nvar):
                        ob[v, i] += src[v]
            elif source_kind == 2:
                for i in range(mx):
                    div = 0.0
                    div += (w[5, g + i + 1] - w[5, g + i - 1]) / (2.0 * d0)
                    u1 = w[1, g + i]
                    u2 = w[2, g + i]
                    u3 = w[3, g + i]
                    b1 = w[5, g + i]
                    b2_ = w[6, g + i]
                    b3 = w[7, g + i]
                    udotb = u1 * b1 + u2 * b2_ + u3 * b3
                    ob[0, i] += 0.0
                    ob[1, i] += -div * b1
                    ob[2, i] += -div * b2_
                    ob[3, i] += -div * b3
                    ob[4, i] += -div * udotb
                    ob[5, i] += -div * u1
                    ob[6, i] += -div * u2
                    ob[7, i] += -div * u3

    return kernel


def _build_flux_kernel_2d(nvar, c2p, faces, source_kind, source_cell):
    sig = types.void(_arr(4, "C"), _arr(2, "C"), _i8, _arr(4, "C"))

    @njit(sig, fastmath=False)
    def kernel(u, dxm, g, out):  # pragma: no cover - compiled
        B = u.shape[0]
        nx = u.shape[2]
        ny = u.shape[3]
        mx = nx - 2 * g
        my = ny - 2 * g
        npen = nx if nx > ny else ny
        mmax = mx if mx > my else my
        w = np.empty((nvar, nx, ny))
        pen = np.empty((nvar, npen))
        F = np.empty((nvar, mmax + 1))
        wl = np.empty(nvar)
        wr = np.empty(nvar)
        fl = np.empty(nvar)
        fr = np.empty(nvar)
        ul = np.empty(nvar)
        ur = np.empty(nvar)
        src = np.empty(nvar)
        for b in range(B):
            ub = u[b]
            ob = out[b]
            for i in range(nx):
                for j in range(ny):
                    c2p(ub[:, i, j], w[:, i, j])
            for v in range(nvar):
                for i in range(mx):
                    for j in range(my):
                        ob[v, i, j] = 0.0
            d0 = dxm[b, 0]
            d1 = dxm[b, 1]
            # axis 0: one pencil per transverse-interior column
            for j in range(my):
                jj = g + j
                for v in range(nvar):
                    for i in range(nx):
                        pen[v, i] = w[v, i, jj]
                faces(pen, g, mx, 0, F, wl, wr, fl, fr, ul, ur)
                for v in range(nvar):
                    for i in range(mx):
                        ob[v, i, j] -= (F[v, i + 1] - F[v, i]) / d0
            # axis 1
            for i in range(mx):
                ii = g + i
                for v in range(nvar):
                    for j in range(ny):
                        pen[v, j] = w[v, ii, j]
                faces(pen, g, my, 1, F, wl, wr, fl, fr, ul, ur)
                for v in range(nvar):
                    for j in range(my):
                        ob[v, i, j] -= (F[v, j + 1] - F[v, j]) / d1
            if source_kind == 1:
                for i in range(mx):
                    for j in range(my):
                        source_cell(ub[:, g + i, g + j], src)
                        for v in range(nvar):
                            ob[v, i, j] += src[v]
            elif source_kind == 2:
                for i in range(mx):
                    for j in range(my):
                        div = 0.0
                        div += (w[5, g + i + 1, g + j] - w[5, g + i - 1, g + j]) / (2.0 * d0)
                        div += (w[6, g + i, g + j + 1] - w[6, g + i, g + j - 1]) / (2.0 * d1)
                        u1 = w[1, g + i, g + j]
                        u2 = w[2, g + i, g + j]
                        u3 = w[3, g + i, g + j]
                        b1 = w[5, g + i, g + j]
                        b2_ = w[6, g + i, g + j]
                        b3 = w[7, g + i, g + j]
                        udotb = u1 * b1 + u2 * b2_ + u3 * b3
                        ob[0, i, j] += 0.0
                        ob[1, i, j] += -div * b1
                        ob[2, i, j] += -div * b2_
                        ob[3, i, j] += -div * b3
                        ob[4, i, j] += -div * udotb
                        ob[5, i, j] += -div * u1
                        ob[6, i, j] += -div * u2
                        ob[7, i, j] += -div * u3

    return kernel


def _build_flux_kernel_3d(nvar, c2p, faces, source_kind, source_cell):
    sig = types.void(_arr(5, "C"), _arr(2, "C"), _i8, _arr(5, "C"))

    @njit(sig, fastmath=False)
    def kernel(u, dxm, g, out):  # pragma: no cover - compiled
        B = u.shape[0]
        nx = u.shape[2]
        ny = u.shape[3]
        nz = u.shape[4]
        mx = nx - 2 * g
        my = ny - 2 * g
        mz = nz - 2 * g
        npen = nx
        if ny > npen:
            npen = ny
        if nz > npen:
            npen = nz
        mmax = mx
        if my > mmax:
            mmax = my
        if mz > mmax:
            mmax = mz
        w = np.empty((nvar, nx, ny, nz))
        pen = np.empty((nvar, npen))
        F = np.empty((nvar, mmax + 1))
        wl = np.empty(nvar)
        wr = np.empty(nvar)
        fl = np.empty(nvar)
        fr = np.empty(nvar)
        ul = np.empty(nvar)
        ur = np.empty(nvar)
        src = np.empty(nvar)
        for b in range(B):
            ub = u[b]
            ob = out[b]
            for i in range(nx):
                for j in range(ny):
                    for k in range(nz):
                        c2p(ub[:, i, j, k], w[:, i, j, k])
            for v in range(nvar):
                for i in range(mx):
                    for j in range(my):
                        for k in range(mz):
                            ob[v, i, j, k] = 0.0
            d0 = dxm[b, 0]
            d1 = dxm[b, 1]
            d2 = dxm[b, 2]
            # axis 0
            for j in range(my):
                jj = g + j
                for k in range(mz):
                    kk = g + k
                    for v in range(nvar):
                        for i in range(nx):
                            pen[v, i] = w[v, i, jj, kk]
                    faces(pen, g, mx, 0, F, wl, wr, fl, fr, ul, ur)
                    for v in range(nvar):
                        for i in range(mx):
                            ob[v, i, j, k] -= (F[v, i + 1] - F[v, i]) / d0
            # axis 1
            for i in range(mx):
                ii = g + i
                for k in range(mz):
                    kk = g + k
                    for v in range(nvar):
                        for j in range(ny):
                            pen[v, j] = w[v, ii, j, kk]
                    faces(pen, g, my, 1, F, wl, wr, fl, fr, ul, ur)
                    for v in range(nvar):
                        for j in range(my):
                            ob[v, i, j, k] -= (F[v, j + 1] - F[v, j]) / d1
            # axis 2
            for i in range(mx):
                ii = g + i
                for j in range(my):
                    jj = g + j
                    for v in range(nvar):
                        for k in range(nz):
                            pen[v, k] = w[v, ii, jj, k]
                    faces(pen, g, mz, 2, F, wl, wr, fl, fr, ul, ur)
                    for v in range(nvar):
                        for k in range(mz):
                            ob[v, i, j, k] -= (F[v, k + 1] - F[v, k]) / d2
            if source_kind == 1:
                for i in range(mx):
                    for j in range(my):
                        for k in range(mz):
                            source_cell(ub[:, g + i, g + j, g + k], src)
                            for v in range(nvar):
                                ob[v, i, j, k] += src[v]
            elif source_kind == 2:
                for i in range(mx):
                    for j in range(my):
                        for k in range(mz):
                            div = 0.0
                            div += (
                                w[5, g + i + 1, g + j, g + k]
                                - w[5, g + i - 1, g + j, g + k]
                            ) / (2.0 * d0)
                            div += (
                                w[6, g + i, g + j + 1, g + k]
                                - w[6, g + i, g + j - 1, g + k]
                            ) / (2.0 * d1)
                            div += (
                                w[7, g + i, g + j, g + k + 1]
                                - w[7, g + i, g + j, g + k - 1]
                            ) / (2.0 * d2)
                            u1 = w[1, g + i, g + j, g + k]
                            u2 = w[2, g + i, g + j, g + k]
                            u3 = w[3, g + i, g + j, g + k]
                            b1 = w[5, g + i, g + j, g + k]
                            b2_ = w[6, g + i, g + j, g + k]
                            b3 = w[7, g + i, g + j, g + k]
                            udotb = u1 * b1 + u2 * b2_ + u3 * b3
                            ob[0, i, j, k] += 0.0
                            ob[1, i, j, k] += -div * b1
                            ob[2, i, j, k] += -div * b2_
                            ob[3, i, j, k] += -div * b3
                            ob[4, i, j, k] += -div * udotb
                            ob[5, i, j, k] += -div * u1
                            ob[6, i, j, k] += -div * u2
                            ob[7, i, j, k] += -div * u3

    return kernel


_FLUX_BUILDERS = {1: _build_flux_kernel_1d, 2: _build_flux_kernel_2d, 3: _build_flux_kernel_3d}


# ---------------------------------------------------------------------------
# fused stable_dt signal-speed reduction kernels
# ---------------------------------------------------------------------------


def _build_speed_kernel_1d(nvar, c2p, nvel, char):
    sig = types.void(_arr(3, "A"), _arr(1, "C"))

    @njit(sig, fastmath=False)
    def kernel(t, out):  # pragma: no cover - compiled
        B = t.shape[0]
        mx = t.shape[2]
        wloc = np.empty(nvar)
        for b in range(B):
            m0 = -np.inf
            for i in range(mx):
                c2p(t[b, :, i], wloc)
                m0 = _nb_max(m0, abs(nvel(wloc, 0)) + char(wloc, 0))
            best = 0.0
            if m0 > best:
                best = m0
            out[b] = best

    return kernel


def _build_speed_kernel_2d(nvar, c2p, nvel, char):
    sig = types.void(_arr(4, "A"), _arr(1, "C"))

    @njit(sig, fastmath=False)
    def kernel(t, out):  # pragma: no cover - compiled
        B = t.shape[0]
        mx = t.shape[2]
        my = t.shape[3]
        wloc = np.empty(nvar)
        for b in range(B):
            m0 = -np.inf
            m1 = -np.inf
            for i in range(mx):
                for j in range(my):
                    c2p(t[b, :, i, j], wloc)
                    m0 = _nb_max(m0, abs(nvel(wloc, 0)) + char(wloc, 0))
                    m1 = _nb_max(m1, abs(nvel(wloc, 1)) + char(wloc, 1))
            best = 0.0
            if m0 > best:
                best = m0
            if m1 > best:
                best = m1
            out[b] = best

    return kernel


def _build_speed_kernel_3d(nvar, c2p, nvel, char):
    sig = types.void(_arr(5, "A"), _arr(1, "C"))

    @njit(sig, fastmath=False)
    def kernel(t, out):  # pragma: no cover - compiled
        B = t.shape[0]
        mx = t.shape[2]
        my = t.shape[3]
        mz = t.shape[4]
        wloc = np.empty(nvar)
        for b in range(B):
            m0 = -np.inf
            m1 = -np.inf
            m2 = -np.inf
            for i in range(mx):
                for j in range(my):
                    for k in range(mz):
                        c2p(t[b, :, i, j, k], wloc)
                        m0 = _nb_max(m0, abs(nvel(wloc, 0)) + char(wloc, 0))
                        m1 = _nb_max(m1, abs(nvel(wloc, 1)) + char(wloc, 1))
                        m2 = _nb_max(m2, abs(nvel(wloc, 2)) + char(wloc, 2))
            best = 0.0
            if m0 > best:
                best = m0
            if m1 > best:
                best = m1
            if m2 > best:
                best = m2
            out[b] = best

    return kernel


_SPEED_BUILDERS = {1: _build_speed_kernel_1d, 2: _build_speed_kernel_2d, 3: _build_speed_kernel_3d}


# ---------------------------------------------------------------------------
# the backend
# ---------------------------------------------------------------------------


class NumbaBackend(KernelBackend):
    """JIT backend: fused per-tile kernels, compiled lazily per combo."""

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        self._flux_kernels: Dict[Tuple, Optional[Callable]] = {}
        self._speed_kernels: Dict[Tuple, Optional[Callable]] = {}
        self._limiter_kernels: Dict[str, Optional[Callable]] = {}
        self._riemann_kernels: Dict[Tuple, Optional[Callable]] = {}
        # module-import compile cost of the pinned scatter kernels
        self.compile_s += _SCATTER_COMPILE_S
        self.n_compiled += 2

    # -- compile accounting -------------------------------------------------

    def _timed_build(self, build: Callable[[], Optional[Callable]]) -> Optional[Callable]:
        t0 = _time.perf_counter()
        kernel = build()
        dt = _time.perf_counter() - t0
        if kernel is not None:
            self.compile_s += dt
            self.n_compiled += 1
            if METRICS.enabled:
                METRICS.inc("kernels.compiled")
                METRICS.observe("kernels.compile_s", dt)
        return kernel

    # -- kernel caches ------------------------------------------------------

    def _combo_key(self, scheme: "FVScheme", nd: int) -> Optional[Tuple]:
        pk = _physics_key(scheme)
        if pk is None or not _grid_compatible(scheme, pk, nd):
            return None
        if scheme.riemann_name not in ("rusanov", "hll"):
            return None  # hllc keeps its reference implementation
        lim_name = scheme.limiter_name if scheme.order == 2 else None
        if scheme.order == 2 and _build_limiter(scheme.limiter_name) is None:
            return None
        return (pk, nd, scheme.order, lim_name, scheme.riemann_name)

    def _get_flux_kernel(self, scheme: "FVScheme", nd: int) -> Optional[Callable]:
        key = self._combo_key(scheme, nd)
        if key is None:
            return None
        if key in self._flux_kernels:
            return self._flux_kernels[key]

        def build() -> Optional[Callable]:
            nvar, c2p, p2c, flux, nvel, char, source_kind, source_cell = _physics_ops(key[0])
            riem = _build_riemann(scheme.riemann_name, nvar, flux, p2c, nvel, char)
            if riem is None:
                return None
            lim = _build_limiter(scheme.limiter_name) if scheme.order == 2 else _nb_sign
            faces = _build_faces(nvar, scheme.order, lim, riem)
            return _FLUX_BUILDERS[nd](nvar, c2p, faces, source_kind, source_cell)

        kernel = self._timed_build(build)
        self._flux_kernels[key] = kernel
        return kernel

    def _get_speed_kernel(self, scheme: "FVScheme", nd: int) -> Optional[Callable]:
        pk = _physics_key(scheme)
        if pk is None or not _grid_compatible(scheme, pk, nd):
            return None
        key = (pk, nd)
        if key in self._speed_kernels:
            return self._speed_kernels[key]

        def build() -> Optional[Callable]:
            nvar, c2p, _p2c, _flux, nvel, char, _sk, _sc = _physics_ops(pk)
            return _SPEED_BUILDERS[nd](nvar, c2p, nvel, char)

        kernel = self._timed_build(build)
        self._speed_kernels[key] = kernel
        return kernel

    def _get_limiter_kernel(self, name: str) -> Optional[Callable]:
        if name in self._limiter_kernels:
            return self._limiter_kernels[name]

        def build() -> Optional[Callable]:
            lim = _build_limiter(name)
            if lim is None:
                return None
            sig = types.void(_arr(1, "C"), _arr(1, "C"), _arr(1, "C"))

            @njit(sig, fastmath=False)
            def kernel(a, b, out):  # pragma: no cover - compiled
                for i in range(a.shape[0]):
                    out[i] = lim(a[i], b[i])

            return kernel

        kernel = self._timed_build(build)
        self._limiter_kernels[name] = kernel
        return kernel

    def _get_riemann_kernel(self, scheme: "FVScheme") -> Optional[Callable]:
        pk = _physics_key(scheme)
        if pk is None or scheme.riemann_name not in ("rusanov", "hll"):
            return None
        key = (pk, scheme.riemann_name)
        if key in self._riemann_kernels:
            return self._riemann_kernels[key]

        def build() -> Optional[Callable]:
            nvar, _c2p, p2c, flux, nvel, char, _sk, _sc = _physics_ops(pk)
            riem = _build_riemann(scheme.riemann_name, nvar, flux, p2c, nvel, char)
            if riem is None:
                return None
            sig = types.void(_arr(2, "C"), _arr(2, "C"), _i8, _arr(2, "C"))

            @njit(sig, fastmath=False)
            def kernel(wl, wr, axis, out):  # pragma: no cover - compiled
                n = wl.shape[1]
                wlv = np.empty(wl.shape[0])
                wrv = np.empty(wl.shape[0])
                fl = np.empty(wl.shape[0])
                fr = np.empty(wl.shape[0])
                ul = np.empty(wl.shape[0])
                ur = np.empty(wl.shape[0])
                for i in range(n):
                    for v in range(wl.shape[0]):
                        wlv[v] = wl[v, i]
                        wrv[v] = wr[v, i]
                    riem(wlv, wrv, axis, fl, fr, ul, ur, out[:, i])

            return kernel

        kernel = self._timed_build(build)
        self._riemann_kernels[key] = kernel
        return kernel

    # -- hot ops ------------------------------------------------------------

    def flux_divergence(
        self,
        scheme: "FVScheme",
        u: np.ndarray,
        dx: Sequence,
        g: int,
        *,
        ndim: int,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        nd = ndim
        batched = u.ndim == nd + 2
        if (
            not 1 <= nd <= 3
            or (not batched and u.ndim != nd + 1)
            or u.dtype != np.float64
            or not u.flags["C_CONTIGUOUS"]
            or g < scheme.required_ghost
        ):
            self._count_fallback()
            return None
        kernel = self._get_flux_kernel(scheme, nd)
        if kernel is None:
            self._count_fallback()
            return None
        ub = u if batched else u[None]
        nblocks = ub.shape[0]
        nvar = ub.shape[1]
        dxm = np.empty((nblocks, nd))
        for a in range(nd):
            da = dx[a]
            if np.ndim(da) == 0:
                dxm[:, a] = float(da)
            else:
                dxm[:, a] = np.asarray(da, dtype=np.float64).reshape(nblocks)
        want = (nblocks, nvar) + tuple(s - 2 * g for s in ub.shape[2:])
        res: Optional[np.ndarray] = None
        if (
            batched
            and out is not None
            and out.shape == want
            and out.dtype == np.float64
            and out.flags["C_CONTIGUOUS"]
        ):
            res = out
        if res is None:
            res = np.empty(want)
        kernel(ub, dxm, int(g), res)
        self._count_dispatch()
        return res if batched else res[0]

    def max_signal_speed_tile(
        self,
        scheme: "FVScheme",
        tile: np.ndarray,
        ndim: int,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        if not 1 <= ndim <= 3 or tile.ndim != ndim + 2 or tile.dtype != np.float64:
            self._count_fallback()
            return None
        kernel = self._get_speed_kernel(scheme, ndim)
        if kernel is None:
            self._count_fallback()
            return None
        nblocks = tile.shape[0]
        res: Optional[np.ndarray] = None
        if (
            out is not None
            and out.shape == (nblocks,)
            and out.dtype == np.float64
            and out.flags["C_CONTIGUOUS"]
        ):
            res = out
        if res is None:
            res = np.empty(nblocks)
        kernel(tile, res)
        self._count_dispatch()
        return res

    # -- always-implemented ops --------------------------------------------

    def apply_limiter(
        self, scheme: "FVScheme", a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        kernel = self._get_limiter_kernel(scheme.limiter_name)
        if kernel is None or a.shape != b.shape:
            self._count_fallback()
            return scheme.limiter(a, b)
        a64 = np.ascontiguousarray(a, dtype=np.float64)
        b64 = np.ascontiguousarray(b, dtype=np.float64)
        res = np.empty_like(a64)
        kernel(a64.reshape(-1), b64.reshape(-1), res.reshape(-1))
        self._count_dispatch()
        return res

    def riemann_flux(
        self, scheme: "FVScheme", wl: np.ndarray, wr: np.ndarray, axis: int
    ) -> np.ndarray:
        kernel = self._get_riemann_kernel(scheme)
        if kernel is None or wl.shape != wr.shape or wl.ndim < 1:
            self._count_fallback()
            return scheme.riemann(scheme, wl, wr, axis)
        nvar = wl.shape[0]
        wl2 = np.ascontiguousarray(wl, dtype=np.float64).reshape(nvar, -1)
        wr2 = np.ascontiguousarray(wr, dtype=np.float64).reshape(nvar, -1)
        res = np.empty_like(wl2)
        kernel(wl2, wr2, int(axis), res)
        self._count_dispatch()
        return res.reshape(wl.shape)

    def scatter_ghosts(
        self, flat: np.ndarray, dst: np.ndarray, src: np.ndarray
    ) -> None:
        if (
            flat.dtype == np.float64
            and flat.flags["C_CONTIGUOUS"]
            and dst.dtype == src.dtype
            and dst.flags["C_CONTIGUOUS"]
            and src.flags["C_CONTIGUOUS"]
        ):
            if dst.dtype == np.int32:
                _scatter_i32(flat, dst, src)
                self._count_dispatch()
                return
            if dst.dtype == np.int64:
                _scatter_i64(flat, dst, src)
                self._count_dispatch()
                return
        self._count_fallback()
        flat[dst] = flat[src]
