"""Kernel-backend interface and the numpy reference backend.

A :class:`KernelBackend` packages the per-tile hot operations of the
execution engines — fused flux-divergence sweeps, the batched ``stable_dt``
signal-speed reduction, limiter and Riemann evaluation, and the flat
gather/scatter ghost copies — behind one small dispatch surface, so the
same solver machinery can run on plain numpy or on a JIT (numba) without
touching any call site.

Contract
--------

* **Bit-for-bit.**  Every op either returns a result computed with
  *exactly* the reference arithmetic — same float64 operations in the
  same order as the numpy machinery in ``repro.solvers`` — or returns
  ``None``, in which case the caller runs the reference path itself.
  There is no "close enough": the equivalence tests compare backends
  with ``np.array_equal`` on raw state.
* **Opt-out, not opt-in.**  ``flux_divergence`` and
  ``max_signal_speed_tile`` are *hooks*: a backend may decline any call
  (unsupported physics/limiter/solver combo, non-contiguous input) by
  returning ``None``.  The numpy backend declines everything — the
  reference path *is* its implementation — which makes it correct by
  construction.
* **``out`` is a scratch hint.**  Callers pass a preallocated buffer to
  avoid a fresh allocation per tile, but must consume the *returned*
  array: a backend is free to ignore ``out`` (e.g. when it is not
  contiguous).

Accounting: backends count dispatches and declined calls, and JIT
backends accumulate compile seconds (``compile_s``) and compiled-kernel
counts, surfaced through :meth:`KernelBackend.stats`, the ``kernels.*``
metrics, and the per-backend bench records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence

import numpy as np

from repro.obs.metrics import METRICS

if TYPE_CHECKING:  # pragma: no cover
    from repro.solvers.scheme import FVScheme

__all__ = ["KernelBackend", "NumpyBackend"]


class KernelBackend:
    """Base backend: reference numpy behavior plus dispatch accounting."""

    #: registry name; subclasses override
    name: str = "base"

    def __init__(self) -> None:
        #: calls this backend handled itself
        self.dispatches = 0
        #: calls declined back to the reference numpy path
        self.fallbacks = 0
        #: cumulative JIT compile seconds (0 for non-JIT backends)
        self.compile_s = 0.0
        #: number of compiled kernel specializations
        self.n_compiled = 0

    def __reduce__(self):  # type: ignore[override]
        # Backends ride along when a scheme crosses a process boundary
        # (the process-parallel backend pickles schemes); compiled JIT
        # kernels are not picklable, so unpickling re-resolves the
        # process-wide instance by name instead.
        from repro.kernels import get_backend

        return (get_backend, (self.name,))

    # -- accounting ---------------------------------------------------------

    def _count_dispatch(self) -> None:
        self.dispatches += 1
        if METRICS.enabled:
            METRICS.inc(f"kernels.dispatch.{self.name}")

    def _count_fallback(self) -> None:
        self.fallbacks += 1
        if METRICS.enabled:
            METRICS.inc("kernels.fallback")

    def stats(self) -> Dict[str, Any]:
        """Dispatch/compile accounting for profiles and bench records."""
        return {
            "backend": self.name,
            "dispatches": self.dispatches,
            "fallbacks": self.fallbacks,
            "compile_s": round(self.compile_s, 6),
            "n_compiled": self.n_compiled,
        }

    # -- hot-op hooks -------------------------------------------------------

    def flux_divergence(
        self,
        scheme: "FVScheme",
        u: np.ndarray,
        dx: Sequence,
        g: int,
        *,
        ndim: int,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Fused -div F over a ``(B, nvar, *padded)`` tile (or one
        ``(nvar, *padded)`` block).  ``None`` declines to the reference
        path in :meth:`repro.solvers.scheme.FVScheme.flux_divergence`."""
        return None

    def max_signal_speed_tile(
        self,
        scheme: "FVScheme",
        tile: np.ndarray,
        ndim: int,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """Per-block max |u_n| + c over a ``(B, nvar, *m)`` interior tile
        (the batched ``stable_dt`` reduction).  ``None`` declines."""
        return None

    # -- always-implemented ops --------------------------------------------

    def apply_limiter(
        self, scheme: "FVScheme", a: np.ndarray, b: np.ndarray
    ) -> np.ndarray:
        """Slope limiter on one-sided differences (elementwise)."""
        return scheme.limiter(a, b)

    def riemann_flux(
        self, scheme: "FVScheme", wl: np.ndarray, wr: np.ndarray, axis: int
    ) -> np.ndarray:
        """Numerical face flux from left/right primitive states."""
        return scheme.riemann(scheme, wl, wr, axis)

    def scatter_ghosts(
        self, flat: np.ndarray, dst: np.ndarray, src: np.ndarray
    ) -> None:
        """Flat gather/scatter executing the same-level ghost copies:
        ``flat[dst] = flat[src]`` (write regions are disjoint)."""
        flat[dst] = flat[src]


class NumpyBackend(KernelBackend):
    """The reference backend: every hot op runs the existing whole-array
    numpy machinery, so it is bit-for-bit by construction.  The hook ops
    decline (returning ``None``) and only count the dispatch — the
    caller's reference path is the implementation."""

    name = "numpy"

    def flux_divergence(
        self,
        scheme: "FVScheme",
        u: np.ndarray,
        dx: Sequence,
        g: int,
        *,
        ndim: int,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        self._count_dispatch()
        return None

    def max_signal_speed_tile(
        self,
        scheme: "FVScheme",
        tile: np.ndarray,
        ndim: int,
        out: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        self._count_dispatch()
        return None
