"""Hardware cost models: direct-mapped cache and per-cell time (Fig. 5)."""

from repro.machine.cache import ALPHA_21064_L1, CacheSpec, DirectMappedCache
from repro.machine.costmodel import (
    T3DCostParams,
    fig5_model_curve,
    stencil_misses,
    stencil_stream,
    time_per_cell,
)

__all__ = [
    "ALPHA_21064_L1",
    "CacheSpec",
    "DirectMappedCache",
    "T3DCostParams",
    "fig5_model_curve",
    "stencil_misses",
    "stencil_stream",
    "time_per_cell",
]
