"""Per-cell time model for the Figure-5 cache-effect reproduction.

The model charges one block update as

``time = block_overhead / n_cells  +  flops × t_flop  +  misses × t_miss``

per cell, where the miss count comes from running the actual address
stream of a 7-point, 8-variable stencil sweep through the
:class:`repro.machine.cache.DirectMappedCache`.  Three knobs correspond
exactly to the paper's observations:

* **block size** ``m`` — sweeping it reproduces the overall Figure-5
  shape (1/m³ amortization of the per-block overhead, then a plateau);
* **padding** — "the peak at 12³ can be removed by padding the array
  with an additional surface of cells": ``pad`` adds extra cells per
  axis, breaking the power-of-two aliasing between variable arrays;
* **sub-blocking** — "the peak at 32³ can be reduced by data mining the
  larger blocks into smaller ones ... optimal at sub-block size 14³":
  ``subblock`` changes the sweep order to tile the block, shrinking the
  active working set below the cache size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.machine.cache import ALPHA_21064_L1, CacheSpec, DirectMappedCache

__all__ = ["T3DCostParams", "stencil_stream", "stencil_misses", "time_per_cell", "fig5_model_curve"]


@dataclass(frozen=True)
class T3DCostParams:
    """Calibration of the per-cell time model (T3D-like defaults)."""

    #: per-block fixed cost per step: loop setup, neighbor pointer work,
    #: boundary bookkeeping (seconds) — dominates small blocks.
    block_overhead: float = 1.2e-4
    #: useful arithmetic per cell per step (3-D MHD, 2nd order)
    flops_per_cell: float = 1300.0
    #: seconds per flop at issue rate (150 MHz Alpha, ~1 flop/cycle)
    t_flop: float = 1.0 / 150e6
    #: main-memory miss penalty (~23 cycles on the T3D node)
    t_miss: float = 23.0 / 150e6
    cache: CacheSpec = ALPHA_21064_L1
    nvar: int = 8


def stencil_stream(
    m: int,
    *,
    n_ghost: int = 2,
    nvar: int = 8,
    pad: int = 0,
    subblock: Optional[int] = None,
) -> np.ndarray:
    """Word-address stream of one 7-point stencil sweep over an m³ block.

    Variable-major storage (one padded array per variable, contiguous),
    matching :class:`repro.core.block.Block`.  For every interior cell
    the kernel reads all ``nvar`` variables at the cell and its six face
    neighbors and writes ``nvar`` outputs to a separate result array —
    the access skeleton of a finite-volume update.

    ``pad`` adds extra cells per axis beyond the ghost padding (the
    paper's mitigation for the 12³ peak); ``subblock`` tiles the sweep
    (the mitigation for the 32³ peak).
    """
    p = m + 2 * n_ghost + pad
    plane = p * p
    var_stride = p * p * p
    out_base = nvar * var_stride

    cells = np.arange(n_ghost, n_ghost + m)
    if subblock is None or subblock >= m:
        order = [(i, j) for i in cells for j in cells]
        k_tiles = [cells]
        tiles = [(order, cells)]
    else:
        s = subblock
        tiles = []
        for i0 in range(0, m, s):
            for j0 in range(0, m, s):
                for k0 in range(0, m, s):
                    ii = cells[i0 : i0 + s]
                    jj = cells[j0 : j0 + s]
                    kk = cells[k0 : k0 + s]
                    tiles.append(([(i, j) for i in ii for j in jj], kk))

    offsets = np.array([0, 1, -1, p, -p, plane, -plane], dtype=np.int64)
    chunks = []
    for order, kk in tiles:
        kk = np.asarray(kk, dtype=np.int64)
        for i, j in order:
            base = (i * p + j) * p + kk  # addresses of the k-row cells
            # reads: per offset, per variable (variable-major inner loop —
            # all variables of one neighbor cell are touched together).
            read = (
                base[:, None, None]
                + offsets[None, :, None]
                + (np.arange(nvar, dtype=np.int64) * var_stride)[None, None, :]
            )
            write = base[:, None] + out_base + (
                np.arange(nvar, dtype=np.int64) * var_stride
            )[None, :]
            chunks.append(read.reshape(-1))
            chunks.append(write.reshape(-1))
    return np.concatenate(chunks)


def stencil_misses(
    m: int,
    *,
    cache: CacheSpec = ALPHA_21064_L1,
    n_ghost: int = 2,
    nvar: int = 8,
    pad: int = 0,
    subblock: Optional[int] = None,
) -> Tuple[int, int]:
    """(misses, accesses) of one stencil sweep over an m³ block."""
    sim = DirectMappedCache(cache)
    stream = stencil_stream(m, n_ghost=n_ghost, nvar=nvar, pad=pad, subblock=subblock)
    misses = sim.run_stream(stream)
    return misses, len(stream)


def time_per_cell(
    m: int,
    params: T3DCostParams = T3DCostParams(),
    *,
    n_ghost: int = 2,
    pad: int = 0,
    subblock: Optional[int] = None,
) -> float:
    """Modelled seconds per computational cell for block size m³."""
    n_cells = m ** 3
    misses, _ = stencil_misses(
        m,
        cache=params.cache,
        n_ghost=n_ghost,
        nvar=params.nvar,
        pad=pad,
        subblock=subblock,
    )
    return (
        params.block_overhead / n_cells
        + params.flops_per_cell * params.t_flop
        + (misses / n_cells) * params.t_miss
    )


def fig5_model_curve(
    sizes: Sequence[int],
    params: T3DCostParams = T3DCostParams(),
    *,
    n_ghost: int = 2,
    pad: int = 0,
    subblock: Optional[int] = None,
) -> Dict[int, float]:
    """Time-per-cell curve over block sizes (the Figure-5 model)."""
    return {
        m: time_per_cell(m, params, n_ghost=n_ghost, pad=pad, subblock=subblock)
        for m in sizes
    }
