"""Direct-mapped cache simulator.

The Cray T3D's DEC Alpha 21064 has an 8 KB *direct-mapped* write-through
L1 data cache with 32-byte lines.  Direct mapping is what produces the
local maxima in the paper's Figure 5: at certain block sizes the padded
per-variable arrays are exact multiples of the cache size apart, so the
eight MHD variables of one cell all map to the same cache line and evict
each other on every access ("local maxima ... believed to be caused by
cache effects on the T3D").

The simulator is driven by a word-address stream and reports hit/miss
counts; :mod:`repro.machine.costmodel` generates the stencil streams and
converts miss rates into per-cell times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CacheSpec", "DirectMappedCache", "ALPHA_21064_L1"]

WORD_BYTES = 8  # float64


@dataclass(frozen=True)
class CacheSpec:
    """Geometry of a direct-mapped cache."""

    size_bytes: int
    line_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.size_bytes % self.line_bytes != 0:
            raise ValueError("cache size must be a multiple of the line size")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        return max(1, self.line_bytes // WORD_BYTES)


#: The T3D node cache: 8 KB direct-mapped, 32 B lines.
ALPHA_21064_L1 = CacheSpec(size_bytes=8 * 1024, line_bytes=32)


class DirectMappedCache:
    """Stateful direct-mapped cache driven by word addresses."""

    def __init__(self, spec: CacheSpec = ALPHA_21064_L1) -> None:
        self.spec = spec
        self.tags = np.full(spec.n_lines, -1, dtype=np.int64)
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.tags[:] = -1
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        n = self.accesses
        return self.misses / n if n else 0.0

    def access(self, word_addr: int) -> bool:
        """One access; returns True on hit."""
        line_addr = word_addr // self.spec.words_per_line
        idx = line_addr % self.spec.n_lines
        if self.tags[idx] == line_addr:
            self.hits += 1
            return True
        self.tags[idx] = line_addr
        self.misses += 1
        return False

    def run_stream(self, word_addrs: np.ndarray) -> int:
        """Process a whole address stream in order; returns miss count.

        The stream must be processed sequentially (each access can evict
        the line a later access needs), so this is a compiled-friendly
        tight loop over precomputed line addresses.
        """
        line_addrs = np.asarray(word_addrs, dtype=np.int64) // self.spec.words_per_line
        idx = line_addrs % self.spec.n_lines
        tags = self.tags
        misses = 0
        for la, i in zip(line_addrs.tolist(), idx.tolist()):
            if tags[i] != la:
                tags[i] = la
                misses += 1
        hits = len(line_addrs) - misses
        self.hits += hits
        self.misses += misses
        return misses
